// Cache-equivalence suite for src/core/decision_cache.h: exact-match caching must be
// bit-identical to uncached decisions — across goal modes, randomized belief-drift
// trajectories, full harness runs of every ALERT scheme variant, and multi-job
// coordinated rounds — plus LRU eviction/invalidation unit tests, a bounded
// score-gap check for bucketed mode, and a concurrency smoke test on the const
// scoring plane.  All randomness is seed-deterministic (std::mt19937_64 with fixed
// seeds); there is no time- or address-dependent input anywhere.
#include "src/core/decision_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "src/core/alert_scheduler.h"
#include "src/core/multi_job.h"
#include "src/dnn/zoo.h"
#include "src/harness/constraint_grid.h"
#include "src/harness/experiment.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

constexpr Watts kInf = 1e18;

void ExpectSameSelection(const DecisionEngine::Selection& a,
                         const DecisionEngine::Selection& b, int step) {
  EXPECT_EQ(a.candidate_index, b.candidate_index) << "step " << step;
  EXPECT_EQ(a.power_index, b.power_index) << "step " << step;
  EXPECT_EQ(a.feasible, b.feasible) << "step " << step;
}

class DecisionCacheTest : public ::testing::Test {
 protected:
  DecisionCacheTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_), engine_(space_) {}

  static DecisionCachePolicy ExactPolicy(size_t capacity = 4096) {
    DecisionCachePolicy policy;
    policy.mode = DecisionCacheMode::kExact;
    policy.capacity = capacity;
    return policy;
  }

  DecisionInputs BaseInputs() const {
    DecisionInputs in;
    in.xi = XiBelief{1.1, 0.12};
    in.deadline = 0.08;
    in.period = 0.08;
    in.use_idle_ratio = true;
    in.idle_ratio = 0.22;
    return in;
  }

  // A belief-drift trajectory: a slow random walk that frequently *revisits* a
  // recently seen belief exactly — the converged-fleet shape that makes exact-match
  // caching pay off at all.
  std::vector<DecisionInputs> DriftTrajectory(uint64_t seed, int steps) const {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> drift(-0.02, 0.02);
    std::uniform_real_distribution<double> unit(0.0, 1.0);
    std::vector<DecisionInputs> trajectory;
    DecisionInputs in = BaseInputs();
    for (int i = 0; i < steps; ++i) {
      if (!trajectory.empty() && unit(rng) < 0.5) {
        // Revisit one of the last few beliefs bit-exactly.
        const size_t back = 1 + static_cast<size_t>(unit(rng) * 3.0);
        trajectory.push_back(
            trajectory[trajectory.size() - std::min(back, trajectory.size())]);
        continue;
      }
      in.xi.mean = std::clamp(in.xi.mean + drift(rng), 0.8, 2.0);
      in.xi.stddev = std::clamp(in.xi.stddev + 0.5 * drift(rng), 0.0, 0.5);
      trajectory.push_back(in);
    }
    return trajectory;
  }

  Goals GoalsFor(GoalMode mode) const {
    Goals goals;
    goals.mode = mode;
    goals.deadline = 0.08;
    goals.accuracy_goal = 0.9;
    goals.energy_budget = 2.0;
    return goals;
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
  DecisionEngine engine_;
};

// --- exact mode: bit-identical to uncached ------------------------------------------

TEST_F(DecisionCacheTest, ExactModeMatchesUncachedAcrossGoalModesAndDrifts) {
  for (const GoalMode mode : {GoalMode::kMinimizeEnergy, GoalMode::kMaximizeAccuracy,
                              GoalMode::kMinimizeLatency}) {
    for (const double pr_th : {0.0, 0.9}) {
      Goals goals = GoalsFor(mode);
      goals.prob_threshold = pr_th;
      DecisionCache cache(engine_, ExactPolicy());
      DecisionEngine::SelectScratch cached_scratch;
      DecisionEngine::SelectScratch plain_scratch;
      const auto trajectory =
          DriftTrajectory(100 + static_cast<uint64_t>(mode) * 7 +
                              static_cast<uint64_t>(pr_th > 0.0),
                          400);
      for (size_t i = 0; i < trajectory.size(); ++i) {
        const Watts limit = (i % 3 == 0) ? kInf : 30.0 + static_cast<double>(i % 5);
        const DecisionEngine::Selection cached = cache.Select(
            goals, goals.energy_budget, trajectory[i], limit, cached_scratch);
        const DecisionEngine::Selection plain = engine_.SelectBest(
            goals, goals.energy_budget, trajectory[i], limit, plain_scratch);
        ExpectSameSelection(cached, plain, static_cast<int>(i));
      }
      // The trajectory revisits beliefs, so the cache must actually be used.
      EXPECT_GT(cache.stats().hits, 0u) << GoalModeName(mode);
      EXPECT_GT(cache.stats().misses, 0u) << GoalModeName(mode);
    }
  }
}

TEST_F(DecisionCacheTest, SchedulerRunsAreBitIdenticalAcrossAlertSchemes) {
  // Full harness runs: an AlertScheduler with the exact-match cache must reproduce
  // the uncached run decision-for-decision for every ALERT variant (full / anytime /
  // traditional candidate sets, mean-only ALERT*, WCET hard-guarantee, paced budget).
  struct Variant {
    const char* name;
    DnnSetChoice choice;
    bool use_variance;
    int wcet_window;
    bool pace;
    GoalMode mode;
  };
  const Variant variants[] = {
      {"ALERT", DnnSetChoice::kBoth, true, 0, false, GoalMode::kMinimizeEnergy},
      {"ALERT-Any", DnnSetChoice::kAnytimeOnly, true, 0, false,
       GoalMode::kMinimizeEnergy},
      {"ALERT-Trad", DnnSetChoice::kTraditionalOnly, true, 0, false,
       GoalMode::kMinimizeEnergy},
      {"ALERT*", DnnSetChoice::kBoth, false, 0, false, GoalMode::kMaximizeAccuracy},
      {"ALERT-WCET", DnnSetChoice::kBoth, true, 16, false, GoalMode::kMinimizeEnergy},
      {"ALERT-paced", DnnSetChoice::kBoth, true, 0, true, GoalMode::kMaximizeAccuracy},
  };

  ExperimentOptions options;
  options.num_inputs = 120;
  options.seed = 7;
  const Experiment experiment(TaskId::kImageClassification, PlatformId::kCpu1,
                              ContentionType::kMemory, options);

  for (const Variant& v : variants) {
    const Stack& stack = experiment.stack(v.choice);
    Goals goals;
    goals.mode = v.mode;
    goals.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
    goals.accuracy_goal = AccuracyGoalsFor(TaskId::kImageClassification)[2];
    goals.energy_budget =
        0.8 * (experiment.platform().cap_max + experiment.platform().base_power) *
        goals.deadline;

    AlertOptions base;
    base.use_variance = v.use_variance;
    base.wcet_window = v.wcet_window;
    base.pace_energy_budget = v.pace;
    AlertOptions with_cache = base;
    with_cache.decision_cache = ExactPolicy();

    AlertScheduler plain(stack.engine(), goals, base);
    AlertScheduler cached(stack.engine(), goals, with_cache);
    const RunResult plain_run = experiment.Run(stack, plain, goals, /*keep=*/true);
    const RunResult cached_run = experiment.Run(stack, cached, goals, /*keep=*/true);

    EXPECT_EQ(plain_run.avg_energy, cached_run.avg_energy) << v.name;
    EXPECT_EQ(plain_run.avg_accuracy, cached_run.avg_accuracy) << v.name;
    EXPECT_EQ(plain_run.avg_latency, cached_run.avg_latency) << v.name;
    EXPECT_EQ(plain_run.violation_fraction, cached_run.violation_fraction) << v.name;
    ASSERT_EQ(plain_run.records.size(), cached_run.records.size()) << v.name;
    for (size_t i = 0; i < plain_run.records.size(); ++i) {
      EXPECT_EQ(plain_run.records[i].decision.candidate,
                cached_run.records[i].decision.candidate)
          << v.name << " input " << i;
      EXPECT_EQ(plain_run.records[i].decision.power_index,
                cached_run.records[i].decision.power_index)
          << v.name << " input " << i;
    }
    ASSERT_NE(cached.decision_cache(), nullptr);
    EXPECT_EQ(cached.decision_cache()->stats().hits +
                  cached.decision_cache()->stats().misses,
              static_cast<uint64_t>(options.num_inputs))
        << v.name;
  }
}

TEST_F(DecisionCacheTest, ConvergedBeliefHitsInBucketedMode) {
  // The live Kalman filter updates mean and stddev on *every* input, so bit-exact
  // repeats essentially never happen in a real run — exact mode is the verification
  // mode.  Once the belief has converged, though, consecutive beliefs land in the
  // same quantization bucket, which is where the hit rate (and the hot-path win)
  // comes from.
  ExperimentOptions options;
  options.num_inputs = 200;
  options.seed = 3;
  const Experiment experiment(TaskId::kImageClassification, PlatformId::kCpu1,
                              ContentionType::kNone, options);
  const Stack& stack = experiment.stack(DnnSetChoice::kBoth);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  goals.accuracy_goal = AccuracyGoalsFor(TaskId::kImageClassification)[2];

  AlertOptions with_cache;
  with_cache.decision_cache.mode = DecisionCacheMode::kBucketed;
  with_cache.decision_cache.xi_mean_step = 0.01;
  with_cache.decision_cache.xi_stddev_step = 0.01;
  AlertScheduler cached(stack.engine(), goals, with_cache);
  (void)experiment.Run(stack, cached, goals);
  ASSERT_NE(cached.decision_cache(), nullptr);
  EXPECT_GT(cached.decision_cache()->stats().hits, 0u);
  // Deterministic trace: measured 0.265 with 0.01-wide buckets over 200 inputs.
  EXPECT_GT(cached.decision_cache()->stats().hit_rate(), 0.2);
}

// --- multi-job coordination ---------------------------------------------------------

TEST_F(DecisionCacheTest, CoordinatedRoundsMatchUncachedUnderBothPolicies) {
  const Seconds deadline = 0.08;
  const Watts budget = 45.0;  // binding for 4 jobs
  const auto make_jobs = [&]() {
    std::vector<JobSpec> jobs;
    for (int j = 0; j < 4; ++j) {
      JobSpec spec;
      spec.name = "job" + std::to_string(j);
      spec.space = &space_;
      spec.goals.mode = GoalMode::kMaximizeAccuracy;
      spec.goals.deadline = deadline * (1.0 + 0.05 * j);
      spec.goals.energy_budget = 1e9;
      jobs.push_back(std::move(spec));
    }
    return jobs;
  };
  const auto requests = [&]() {
    std::vector<InferenceRequest> r;
    for (int j = 0; j < 4; ++j) {
      const Seconds d = deadline * (1.0 + 0.05 * j);
      r.push_back(InferenceRequest{0, d, d});
    }
    return r;
  }();

  for (const AllocationPolicy policy :
       {AllocationPolicy::kProportional, AllocationPolicy::kSlackRecycling}) {
    MultiJobCoordinator plain(make_jobs(), budget, policy);
    MultiJobCoordinator cached(make_jobs(), budget, policy);
    cached.set_decision_cache_policy(ExactPolicy());

    for (int round = 0; round < 30; ++round) {
      const auto plain_decisions = plain.DecideRound(requests);
      const auto cached_decisions = cached.DecideRound(requests);
      ASSERT_EQ(plain_decisions.size(), cached_decisions.size());
      for (size_t j = 0; j < plain_decisions.size(); ++j) {
        EXPECT_EQ(plain_decisions[j].candidate, cached_decisions[j].candidate)
            << "round " << round << " job " << j;
        EXPECT_EQ(plain_decisions[j].power_index, cached_decisions[j].power_index)
            << "round " << round << " job " << j;
      }

      std::vector<Measurement> measurements;
      for (size_t j = 0; j < plain_decisions.size(); ++j) {
        const SchedulingDecision& d = plain_decisions[j];
        const Seconds profile =
            space_.ProfileLatency(d.candidate.model_index, d.power_index);
        const double xi = 1.0 + 0.15 * std::sin(0.37 * round);
        Measurement m;
        m.latency = xi * profile;
        m.period = requests[j].deadline;
        m.deadline = requests[j].deadline;
        m.deadline_met = m.latency <= m.deadline;
        m.energy = d.power_cap * m.latency;
        m.inference_power = d.power_cap;
        m.idle_power = 0.25 * d.power_cap;
        m.accuracy = space_.CandidateAccuracy(d.candidate);
        m.xi_anchor_time = xi * profile;
        m.xi_anchor_fraction = 1.0;
        m.xi_censored = false;
        measurements.push_back(m);
      }
      plain.ObserveRound(plain_decisions, measurements);
      cached.ObserveRound(cached_decisions, measurements);
    }
    // Identical consecutive beliefs (the sin-driven xi repeats exactly only rarely,
    // but within a round the same snapshot is re-selected under several limits) must
    // produce cache traffic.
    const DecisionCacheStats stats = cached.decision_cache_stats();
    EXPECT_GT(stats.hits + stats.misses, 0u);
  }
}

// --- bucketed mode ------------------------------------------------------------------

TEST_F(DecisionCacheTest, BucketedModeHitsMoreAndStaysWithinScoreGapTolerance) {
  // Bucketed mode may return the selection of a *nearby* belief.  The contract is a
  // bounded objective gap: scoring the cached choice under the true inputs must come
  // within a small tolerance of the true optimum's objective.
  DecisionCachePolicy policy;
  policy.mode = DecisionCacheMode::kBucketed;
  policy.xi_mean_step = 0.01;
  policy.xi_stddev_step = 0.01;
  policy.capacity = 4096;
  DecisionCache cache(engine_, policy);

  const Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  DecisionEngine::SelectScratch cached_scratch;
  DecisionEngine::SelectScratch plain_scratch;

  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> drift(-0.003, 0.003);
  DecisionInputs in = BaseInputs();
  int compared = 0;
  for (int i = 0; i < 500; ++i) {
    in.xi.mean = std::clamp(in.xi.mean + drift(rng), 0.9, 1.6);
    in.xi.stddev = std::clamp(in.xi.stddev + drift(rng), 0.01, 0.4);
    const DecisionEngine::Selection cached =
        cache.Select(goals, goals.energy_budget, in, kInf, cached_scratch);
    const DecisionEngine::Selection plain =
        engine_.SelectBest(goals, goals.energy_budget, in, kInf, plain_scratch);
    if (!(cached.feasible && plain.feasible)) {
      continue;  // fallback decisions have no objective to compare
    }
    ++compared;
    const ConfigScore cached_score =
        engine_.Score(cached.candidate_index, cached.power_index, in);
    const ConfigScore best_score =
        engine_.Score(plain.candidate_index, plain.power_index, in);
    // Energy-minimization objective: the cached choice may not beat the optimum, and
    // must not trail it by more than the bucket-width-induced tolerance.
    EXPECT_GE(cached_score.expected_energy, best_score.expected_energy - 1e-9)
        << "step " << i;
    EXPECT_LE(cached_score.expected_energy,
              best_score.expected_energy * (1.0 + 0.05) + 1e-9)
        << "step " << i;
  }
  EXPECT_GT(compared, 100);
  // The drift steps are far smaller than the bucket width, so bucketed keys must
  // collide — that is the hit-rate advantage over exact mode.
  EXPECT_GT(cache.stats().hits, cache.stats().misses);
}

// --- eviction / invalidation --------------------------------------------------------

TEST_F(DecisionCacheTest, LruEvictsLeastRecentlyUsedAtCapacity) {
  DecisionCache cache(engine_, ExactPolicy(/*capacity=*/2));
  const Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  DecisionInputs a = BaseInputs();
  DecisionInputs b = BaseInputs();
  b.xi.mean = 1.2;
  DecisionInputs c = BaseInputs();
  c.xi.mean = 1.3;
  const DecisionEngine::Selection sel{1, 2, true};

  cache.Insert(goals, 1.0, a, kInf, sel);
  cache.Insert(goals, 1.0, b, kInf, sel);
  EXPECT_EQ(cache.size(), 2u);

  // Touch `a` so `b` becomes the LRU victim.
  DecisionEngine::Selection out;
  EXPECT_TRUE(cache.Lookup(goals, 1.0, a, kInf, &out));
  cache.Insert(goals, 1.0, c, kInf, sel);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.Lookup(goals, 1.0, a, kInf, &out));
  EXPECT_FALSE(cache.Lookup(goals, 1.0, b, kInf, &out));  // evicted
  EXPECT_TRUE(cache.Lookup(goals, 1.0, c, kInf, &out));
}

TEST_F(DecisionCacheTest, DistinctKeysDoNotAlias) {
  // Every key dimension must separate entries: goals mode, allowance, limit, and
  // each DecisionInputs field the selection reads.
  DecisionCache cache(engine_, ExactPolicy());
  const Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  const DecisionInputs base = BaseInputs();
  const DecisionEngine::Selection sel{3, 1, true};
  cache.Insert(goals, 1.0, base, kInf, sel);

  DecisionEngine::Selection out;
  Goals other_mode = goals;
  other_mode.mode = GoalMode::kMaximizeAccuracy;
  EXPECT_FALSE(cache.Lookup(other_mode, 1.0, base, kInf, &out));
  EXPECT_FALSE(cache.Lookup(goals, 2.0, base, kInf, &out));
  EXPECT_FALSE(cache.Lookup(goals, 1.0, base, 30.0, &out));
  DecisionInputs changed = base;
  changed.deadline = 0.09;
  EXPECT_FALSE(cache.Lookup(goals, 1.0, changed, kInf, &out));
  changed = base;
  changed.idle_ratio = 0.3;
  EXPECT_FALSE(cache.Lookup(goals, 1.0, changed, kInf, &out));
  changed = base;
  changed.stop_at_cutoff = false;
  EXPECT_FALSE(cache.Lookup(goals, 1.0, changed, kInf, &out));
  EXPECT_TRUE(cache.Lookup(goals, 1.0, base, kInf, &out));
  EXPECT_EQ(out.candidate_index, sel.candidate_index);
  EXPECT_EQ(out.power_index, sel.power_index);
}

TEST_F(DecisionCacheTest, InvalidateDropsEverythingAndCountsStale) {
  DecisionCache cache(engine_, ExactPolicy());
  const Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  DecisionInputs in = BaseInputs();
  const DecisionEngine::Selection sel{0, 0, true};
  for (int i = 0; i < 3; ++i) {
    in.xi.mean = 1.0 + 0.1 * i;
    cache.Insert(goals, 1.0, in, kInf, sel);
  }
  EXPECT_EQ(cache.size(), 3u);
  cache.Invalidate();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().stale, 3u);
  DecisionEngine::Selection out;
  EXPECT_FALSE(cache.Lookup(goals, 1.0, in, kInf, &out));
}

TEST_F(DecisionCacheTest, SetGoalsInvalidatesTheSchedulerCache) {
  AlertOptions options;
  options.decision_cache = ExactPolicy();
  Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  AlertScheduler scheduler(engine_, goals, options);
  const InferenceRequest request{0, goals.deadline, goals.deadline};
  (void)scheduler.Decide(request);
  ASSERT_NE(scheduler.decision_cache(), nullptr);
  EXPECT_EQ(scheduler.decision_cache()->size(), 1u);

  goals.accuracy_goal = 0.95;
  scheduler.set_goals(goals);
  EXPECT_EQ(scheduler.decision_cache()->size(), 0u);
  EXPECT_EQ(scheduler.decision_cache()->stats().stale, 1u);
}

// --- concurrency smoke --------------------------------------------------------------

TEST_F(DecisionCacheTest, ManyCachesSharingOneEngineConcurrently) {
  // The cache itself is single-owner, but the scoring plane underneath is const and
  // shared: N threads each drive a private exact-match cache against the same engine
  // and must all reproduce the serial reference decisions.
  const Goals goals = GoalsFor(GoalMode::kMinimizeEnergy);
  const auto trajectory = DriftTrajectory(99, 200);

  std::vector<DecisionEngine::Selection> reference;
  {
    DecisionEngine::SelectScratch scratch;
    for (const DecisionInputs& in : trajectory) {
      reference.push_back(
          engine_.SelectBest(goals, goals.energy_budget, in, kInf, scratch));
    }
  }

  constexpr int kThreads = 4;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      DecisionCache cache(engine_, ExactPolicy());
      DecisionEngine::SelectScratch scratch;
      for (size_t i = 0; i < trajectory.size(); ++i) {
        const DecisionEngine::Selection got = cache.Select(
            goals, goals.energy_budget, trajectory[i], kInf, scratch);
        if (got.candidate_index != reference[i].candidate_index ||
            got.power_index != reference[i].power_index) {
          ++mismatches[static_cast<size_t>(t)];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace alert
