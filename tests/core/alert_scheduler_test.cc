#include "src/core/alert_scheduler.h"

#include <gtest/gtest.h>

#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

class AlertSchedulerTest : public ::testing::Test {
 protected:
  AlertSchedulerTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_) {}

  Goals MinEnergyGoals(Seconds deadline, double accuracy) const {
    Goals g;
    g.mode = GoalMode::kMinimizeEnergy;
    g.deadline = deadline;
    g.accuracy_goal = accuracy;
    return g;
  }

  Goals MinErrorGoals(Seconds deadline, Joules budget) const {
    Goals g;
    g.mode = GoalMode::kMaximizeAccuracy;
    g.deadline = deadline;
    g.energy_budget = budget;
    return g;
  }

  InferenceRequest Request(Seconds deadline) const {
    InferenceRequest r;
    r.input_index = 0;
    r.deadline = deadline;
    r.period = deadline;
    return r;
  }

  // Feeds the filter a stream of identical ratios to settle mu at `ratio` with a
  // calm (small) variance.
  static void Settle(AlertScheduler& s, const ConfigSpace& space, double ratio, int n) {
    for (int i = 0; i < n; ++i) {
      SchedulingDecision d;
      d.candidate = space.candidate(0);
      d.power_index = space.default_power_index();
      d.power_cap = space.cap(d.power_index);
      Measurement m;
      m.xi_anchor_time =
          ratio * space.ProfileLatency(d.candidate.model_index, d.power_index);
      m.xi_anchor_fraction = 1.0;
      m.xi_censored = false;
      m.latency = m.xi_anchor_time;
      m.period = m.latency;  // no idle: skip the idle filter
      m.inference_power = 30.0;
      m.idle_power = 6.0;
      s.Observe(d, m);
    }
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
};

TEST_F(AlertSchedulerTest, RejectsInvalidGoals) {
  Goals g;  // deadline unset
  EXPECT_DEATH(AlertScheduler(space_, g), "Valid");
}

TEST_F(AlertSchedulerTest, MeetsAccuracyGoalInChoice) {
  const Goals goals = MinEnergyGoals(0.08, 0.92);
  AlertScheduler s(space_, goals);
  Settle(s, space_, 1.0, 30);
  const SchedulingDecision d = s.Decide(Request(0.08));
  EXPECT_GE(space_.CandidateAccuracy(d.candidate), 0.92);
}

TEST_F(AlertSchedulerTest, LowerAccuracyGoalAllowsCheaperConfig) {
  AlertScheduler strict(space_, MinEnergyGoals(0.08, 0.93));
  AlertScheduler loose(space_, MinEnergyGoals(0.08, 0.87));
  Settle(strict, space_, 1.0, 30);
  Settle(loose, space_, 1.0, 30);
  const auto d_strict = strict.Decide(Request(0.08));
  const auto d_loose = loose.Decide(Request(0.08));
  const auto e_strict = strict.Estimate(
      Configuration{d_strict.candidate, d_strict.power_index}, 0.08, 0.08);
  const auto e_loose =
      loose.Estimate(Configuration{d_loose.candidate, d_loose.power_index}, 0.08, 0.08);
  EXPECT_LE(e_loose.expected_energy, e_strict.expected_energy + 1e-9);
}

TEST_F(AlertSchedulerTest, SlowdownShiftsToFasterOrSaferConfig) {
  const Goals goals = MinEnergyGoals(0.08, 0.92);
  AlertScheduler s(space_, goals);
  Settle(s, space_, 1.0, 30);
  const SchedulingDecision calm = s.Decide(Request(0.08));
  const Seconds calm_latency =
      space_.CandidateProfileLatency(calm.candidate, calm.power_index);

  AlertScheduler slow(space_, goals);
  Settle(slow, space_, 1.8, 30);
  const SchedulingDecision stressed = slow.Decide(Request(0.08));
  const Seconds stressed_latency =
      space_.CandidateProfileLatency(stressed.candidate, stressed.power_index);
  // Under a believed 1.8x slowdown the chosen configuration must be nominally faster.
  EXPECT_LT(stressed_latency, calm_latency);
}

TEST_F(AlertSchedulerTest, Section34Example_VarianceFlipsChoice) {
  // The paper's worked example: under low variance pick the larger DNN (higher expected
  // accuracy); under high variance the smaller DNN's completion probability wins.
  const Goals goals = MinErrorGoals(0.08, 1e9);  // budget loose: pure accuracy
  AlertScheduler calm(space_, goals);
  Settle(calm, space_, 1.0, 60);  // variance collapses
  const auto d_calm = calm.Decide(Request(0.08));
  const double acc_calm = space_.CandidateAccuracy(d_calm.candidate);

  AlertScheduler shaky(space_, goals);
  // Alternate fast/slow observations: mu ~ 1.25, variance high.
  for (int i = 0; i < 40; ++i) {
    Settle(shaky, space_, i % 2 == 0 ? 0.9 : 1.6, 1);
  }
  const auto d_shaky = shaky.Decide(Request(0.08));
  const double acc_shaky = space_.CandidateAccuracy(d_shaky.candidate);
  EXPECT_LT(acc_shaky, acc_calm);
}

TEST_F(AlertSchedulerTest, VolatilityPrefersAnytimeOverTraditional) {
  // Section 3.5: under high variance the anytime DNN's expected accuracy beats a
  // traditional DNN of similar size, because it degrades gracefully.
  const Goals goals = MinErrorGoals(0.08, 1e9);
  AlertScheduler shaky(space_, goals);
  for (int i = 0; i < 40; ++i) {
    Settle(shaky, space_, i % 2 == 0 ? 0.8 : 1.9, 1);
  }
  const auto d = shaky.Decide(Request(0.08));
  EXPECT_TRUE(space_.model(d.candidate.model_index).is_anytime());
}

TEST_F(AlertSchedulerTest, EnergyBudgetConstrainsChoice) {
  // A tight budget forces a configuration whose estimated energy fits.
  const Goals tight = MinErrorGoals(0.08, 0.9);
  AlertScheduler s(space_, tight);
  Settle(s, space_, 1.0, 30);
  const auto d = s.Decide(Request(0.08));
  const auto est = s.Estimate(Configuration{d.candidate, d.power_index}, 0.08, 0.08);
  EXPECT_LE(est.expected_energy, 0.9 + 1e-9);
}

TEST_F(AlertSchedulerTest, FallbackPrefersAccuracyAmongSafeConfigs) {
  // Impossible accuracy goal: nothing is feasible, so the latency > accuracy > power
  // hierarchy kicks in — the pick should still be a high-accuracy config that meets
  // the deadline, not simply the fastest one.
  const Goals goals = MinEnergyGoals(0.08, 0.999);
  AlertScheduler s(space_, goals);
  Settle(s, space_, 1.0, 30);
  const auto d = s.Decide(Request(0.08));
  const auto est = s.Estimate(Configuration{d.candidate, d.power_index}, 0.08, 0.08);
  EXPECT_GT(est.prob_deadline, 0.95);
  EXPECT_GT(space_.CandidateAccuracy(d.candidate), 0.92);
}

TEST_F(AlertSchedulerTest, ProbThresholdRejectsRiskyConfigs) {
  Goals goals = MinErrorGoals(0.08, 1e9);
  goals.prob_threshold = 0.999;
  AlertScheduler s(space_, goals);
  // Moderate volatility.
  for (int i = 0; i < 40; ++i) {
    Settle(s, space_, i % 2 == 0 ? 0.9 : 1.4, 1);
  }
  const auto d = s.Decide(Request(0.08));
  const auto est = s.Estimate(Configuration{d.candidate, d.power_index}, 0.08, 0.08);
  EXPECT_GE(est.prob_deadline, 0.999 - 1e-6);
}

TEST_F(AlertSchedulerTest, OverheadCompensationTightensDeadline) {
  Goals goals = MinErrorGoals(0.08, 1e9);
  AlertOptions with_overhead;
  with_overhead.scheduler_overhead = 0.02;
  AlertScheduler compensated(space_, goals, with_overhead);
  AlertScheduler plain(space_, goals);
  Settle(compensated, space_, 1.0, 40);
  Settle(plain, space_, 1.0, 40);
  const auto d_comp = compensated.Decide(Request(0.08));
  const auto d_plain = plain.Decide(Request(0.08));
  // The compensated scheduler plans for an earlier effective deadline, so its chosen
  // run must be nominally no slower.
  EXPECT_LE(space_.CandidateProfileLatency(d_comp.candidate, d_comp.power_index),
            space_.CandidateProfileLatency(d_plain.candidate, d_plain.power_index) + 1e-12);
}

TEST_F(AlertSchedulerTest, MeanOnlyVariantIgnoresVariance) {
  AlertOptions star;
  star.use_variance = false;
  AlertScheduler s(space_, MinErrorGoals(0.08, 1e9), star);
  for (int i = 0; i < 40; ++i) {
    Settle(s, space_, i % 2 == 0 ? 0.8 : 1.2, 1);
  }
  EXPECT_EQ(s.xi_belief().stddev, 0.0);
}

TEST_F(AlertSchedulerTest, ObserveUpdatesSlowdownFilter) {
  AlertScheduler s(space_, MinEnergyGoals(0.08, 0.9));
  EXPECT_EQ(s.slowdown_estimator().num_observations(), 0);
  Settle(s, space_, 1.4, 5);
  EXPECT_EQ(s.slowdown_estimator().num_observations(), 5);
  EXPECT_NEAR(s.xi_belief().mean, 1.4, 0.1);
}

TEST_F(AlertSchedulerTest, ObserveUpdatesIdleFilterOnlyWithIdleTime) {
  AlertScheduler s(space_, MinEnergyGoals(0.08, 0.9));
  SchedulingDecision d;
  d.candidate = space_.candidate(0);
  d.power_index = 0;
  d.power_cap = space_.cap(0);
  Measurement m;
  m.latency = 0.05;
  m.period = 0.05;  // no idle time
  m.inference_power = 30.0;
  m.idle_power = 6.0;
  m.xi_anchor_time = 0.05;
  m.xi_anchor_fraction = 1.0;
  s.Observe(d, m);
  EXPECT_EQ(s.idle_power_filter().num_updates(), 0);
  m.period = 0.08;  // idle time present
  s.Observe(d, m);
  EXPECT_EQ(s.idle_power_filter().num_updates(), 1);
}

TEST_F(AlertSchedulerTest, DynamicGoalUpdate) {
  AlertScheduler s(space_, MinEnergyGoals(0.08, 0.88));
  Settle(s, space_, 1.0, 30);
  const auto d_before = s.Decide(Request(0.08));
  Goals harder = MinEnergyGoals(0.08, 0.94);
  s.set_goals(harder);
  const auto d_after = s.Decide(Request(0.08));
  EXPECT_GE(space_.CandidateAccuracy(d_after.candidate), 0.94);
  EXPECT_LE(space_.CandidateAccuracy(d_before.candidate),
            space_.CandidateAccuracy(d_after.candidate));
}

TEST_F(AlertSchedulerTest, EstimateExposesAllThreeQuantities) {
  AlertScheduler s(space_, MinEnergyGoals(0.08, 0.9));
  Settle(s, space_, 1.0, 20);
  const auto est = s.Estimate(Configuration{space_.candidate(0), 5}, 0.08, 0.08);
  EXPECT_GT(est.prob_deadline, 0.0);
  EXPECT_LE(est.prob_deadline, 1.0);
  EXPECT_GT(est.expected_accuracy, 0.0);
  EXPECT_LT(est.expected_accuracy, 1.0);
  EXPECT_GT(est.expected_energy, 0.0);
}

TEST_F(AlertSchedulerTest, MinimizeEnergyPicksCheapestFeasible) {
  // Exhaustive cross-check of the selection rule against a manual argmin.
  const Goals goals = MinEnergyGoals(0.08, 0.9);
  AlertScheduler s(space_, goals);
  Settle(s, space_, 1.1, 30);
  const auto d = s.Decide(Request(0.08));
  const auto chosen = s.Estimate(Configuration{d.candidate, d.power_index}, 0.08, 0.08);
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    for (int pi = 0; pi < space_.num_powers(); ++pi) {
      const auto est = s.Estimate(Configuration{space_.candidate(ci), pi}, 0.08, 0.08);
      if (est.expected_accuracy >= goals.accuracy_goal) {
        EXPECT_GE(est.expected_energy, chosen.expected_energy - 1e-9)
            << "candidate " << ci << " power " << pi;
      }
    }
  }
}

}  // namespace
}  // namespace alert
