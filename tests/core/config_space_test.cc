#include "src/core/config_space.h"

#include <gtest/gtest.h>

#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

class ConfigSpaceTest : public ::testing::Test {
 protected:
  ConfigSpaceTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_) {}

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
};

TEST_F(ConfigSpaceTest, CandidateExpansion) {
  // 5 traditional + 5 anytime stages = 10 candidates; 11 power settings on CPU1.
  EXPECT_EQ(space_.num_models(), 6);
  EXPECT_EQ(space_.num_candidates(), 10);
  EXPECT_EQ(space_.num_powers(), 11);
  EXPECT_EQ(space_.num_configurations(), 110);
}

TEST_F(ConfigSpaceTest, TraditionalCandidatesHaveNoStageLimit) {
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    const Candidate& c = space_.candidate(ci);
    if (!space_.model(c.model_index).is_anytime()) {
      EXPECT_EQ(c.stage_limit, -1);
    } else {
      EXPECT_GE(c.stage_limit, 0);
    }
  }
}

TEST_F(ConfigSpaceTest, AnytimeStagesEnumeratedInOrder) {
  int prev_stage = -1;
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    const Candidate& c = space_.candidate(ci);
    if (space_.model(c.model_index).is_anytime()) {
      EXPECT_EQ(c.stage_limit, prev_stage + 1);
      prev_stage = c.stage_limit;
    }
  }
  EXPECT_EQ(prev_stage, 4);
}

TEST_F(ConfigSpaceTest, ProfileLatencyMatchesSimulatorNominal) {
  for (int m = 0; m < space_.num_models(); ++m) {
    for (int p = 0; p < space_.num_powers(); ++p) {
      EXPECT_DOUBLE_EQ(space_.ProfileLatency(m, p),
                       sim_.NominalLatency(m, space_.cap(p)));
    }
  }
}

TEST_F(ConfigSpaceTest, StageLimitedProfileLatency) {
  // Find the anytime model and its stage-2 candidate.
  const int any = space_.AnytimeModel();
  ASSERT_GE(any, 0);
  const DnnModel& m = space_.model(any);
  const Candidate c{any, 2};
  EXPECT_DOUBLE_EQ(space_.CandidateProfileLatency(c, 3),
                   space_.ProfileLatency(any, 3) * m.anytime_stages[2].latency_fraction);
}

TEST_F(ConfigSpaceTest, CandidateAccuracy) {
  const int any = space_.AnytimeModel();
  const DnnModel& m = space_.model(any);
  EXPECT_DOUBLE_EQ(space_.CandidateAccuracy(Candidate{any, 1}),
                   m.anytime_stages[1].accuracy);
  EXPECT_DOUBLE_EQ(space_.CandidateAccuracy(Candidate{0, -1}), space_.model(0).accuracy);
}

TEST_F(ConfigSpaceTest, FastestTraditionalIsRankZero) {
  const int fastest = space_.FastestTraditionalModel();
  ASSERT_GE(fastest, 0);
  EXPECT_EQ(space_.model(fastest).family_rank, 0);
  EXPECT_FALSE(space_.model(fastest).is_anytime());
}

TEST_F(ConfigSpaceTest, AnytimeModelFound) {
  const int any = space_.AnytimeModel();
  ASSERT_GE(any, 0);
  EXPECT_TRUE(space_.model(any).is_anytime());
}

TEST_F(ConfigSpaceTest, DefaultPowerIsMaxCap) {
  EXPECT_DOUBLE_EQ(space_.cap(space_.default_power_index()), 35.0);
}

TEST(ConfigSpaceNoAnytimeTest, AnytimeLookupReturnsMinusOne) {
  auto models =
      BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kTraditionalOnly);
  PlatformSimulator sim(GetPlatform(PlatformId::kCpu1), models);
  ConfigSpace space(sim);
  EXPECT_EQ(space.AnytimeModel(), -1);
  EXPECT_EQ(space.num_candidates(), 5);
}

TEST(ConfigSpacePerturbationTest, ProfileNoiseIsSystematicAndSeeded) {
  auto models = BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth);
  PlatformSimulator sim(GetPlatform(PlatformId::kCpu1), models);
  ConfigSpace clean(sim, 0.0, 1);
  ConfigSpace noisy_a(sim, 0.05, 1);
  ConfigSpace noisy_b(sim, 0.05, 1);
  ConfigSpace noisy_c(sim, 0.05, 2);
  int differs_from_clean = 0;
  int differs_across_seeds = 0;
  for (int m = 0; m < clean.num_models(); ++m) {
    for (int p = 0; p < clean.num_powers(); ++p) {
      EXPECT_DOUBLE_EQ(noisy_a.ProfileLatency(m, p), noisy_b.ProfileLatency(m, p));
      differs_from_clean +=
          noisy_a.ProfileLatency(m, p) != clean.ProfileLatency(m, p) ? 1 : 0;
      differs_across_seeds +=
          noisy_a.ProfileLatency(m, p) != noisy_c.ProfileLatency(m, p) ? 1 : 0;
    }
  }
  EXPECT_GT(differs_from_clean, 50);
  EXPECT_GT(differs_across_seeds, 50);
}

}  // namespace
}  // namespace alert
