// Scalar <-> SIMD equivalence plane for the vectorized scoring kernel
// (src/core/decision_engine_simd.cc) and the fused streaming SelectBest.
//
// The dispatch contract (src/common/simd.h) promises the kernel performs the same
// IEEE-754 operations in the same order as the scalar ScoreEntry fast path, so the
// assertions here are bit-exact, not approximate: every score byte-identical, every
// selection identical, over a randomized property sweep of DecisionInputs
// (degenerate sigma == 0, Eq. 12 percentile, infeasible-static spaces, Pr_th sweeps,
// all goal modes).  On a build or machine without a vector backend the engine
// reports simd_active() == false and the comparisons degenerate to scalar-vs-scalar
// — still meaningful for the fused-vs-materialized SelectBest checks, which gate
// the streaming rewrite independent of vectorization.
#include <cstring>
#include <random>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/simd.h"
#include "src/core/config_space.h"
#include "src/core/decision_engine.h"
#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

class SimdEquivalenceTest : public ::testing::Test {
 protected:
  SimdEquivalenceTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_),
        engine_(space_) {}

  // Scores `in` through both paths; returns true when a real comparison happened
  // (backend active).
  void ScoreBothWays(const DecisionInputs& in, std::vector<ConfigScore>* scalar,
                     std::vector<ConfigScore>* simd) {
    scalar->resize(static_cast<size_t>(engine_.num_entries()));
    simd->resize(static_cast<size_t>(engine_.num_entries()));
    engine_.set_simd_enabled(false);
    engine_.ScoreAll(in, *scalar);
    engine_.set_simd_enabled(true);
    engine_.ScoreAll(in, *simd);
  }

  static void ExpectScoresBitIdentical(const std::vector<ConfigScore>& a,
                                       const std::vector<ConfigScore>& b) {
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(ConfigScore)));
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
  DecisionEngine engine_;
};

// Deterministic randomized inputs covering the fast path and every degenerate
// branch: sigma == 0 (ALERT*), percentile > 0 (Eq. 12), tight/loose deadlines,
// both idle-power models, both cutoff modes.
std::vector<DecisionInputs> PropertyInputs(int count) {
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> mean(0.5, 2.5);
  std::uniform_real_distribution<double> sigma(0.005, 0.6);
  std::uniform_real_distribution<double> deadline(0.005, 0.5);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<DecisionInputs> inputs;
  for (int i = 0; i < count; ++i) {
    DecisionInputs in;
    in.xi.mean = mean(rng);
    in.xi.stddev = (i % 7 == 3) ? 0.0 : sigma(rng);  // degenerate ALERT* slice
    in.deadline = deadline(rng);
    in.period = in.deadline * (1.0 + unit(rng));
    in.use_idle_ratio = (i % 2 == 0);
    in.idle_ratio = 0.1 + 0.3 * unit(rng);
    in.fixed_idle_power = 0.5 + 2.0 * unit(rng);
    in.percentile = (i % 11 == 5) ? 0.9 : 0.0;  // Eq. 12 slice
    in.stop_at_cutoff = (i % 5 != 4);
    inputs.push_back(in);
  }
  return inputs;
}

TEST_F(SimdEquivalenceTest, ReportsDispatchState) {
  // simd_active() must agree with the compiled backend + runtime probe, and
  // set_simd_enabled(true) must not stick when no backend is usable.
  const bool expect_active =
      simd::CompiledBackend() != simd::Backend::kScalar && simd::RuntimeSupported();
  EXPECT_EQ(engine_.simd_active(), expect_active);
  engine_.set_simd_enabled(false);
  EXPECT_FALSE(engine_.simd_active());
  engine_.set_simd_enabled(true);
  EXPECT_EQ(engine_.simd_active(), expect_active);
}

TEST_F(SimdEquivalenceTest, ScoreAllBitIdenticalAcrossPropertySweep) {
  std::vector<ConfigScore> scalar, simd;
  for (const DecisionInputs& in : PropertyInputs(200)) {
    ScoreBothWays(in, &scalar, &simd);
    ExpectScoresBitIdentical(scalar, simd);
  }
}

TEST_F(SimdEquivalenceTest, DegenerateSigmaZeroIsBitExact) {
  DecisionInputs in;
  in.xi = XiBelief{1.2, 0.0};  // ALERT*: mean-only belief
  in.deadline = 0.08;
  in.period = 0.08;
  in.use_idle_ratio = true;
  in.idle_ratio = 0.22;
  std::vector<ConfigScore> scalar, simd;
  ScoreBothWays(in, &scalar, &simd);
  ExpectScoresBitIdentical(scalar, simd);
}

TEST_F(SimdEquivalenceTest, PercentileEnergyIsBitExact) {
  DecisionInputs in;
  in.xi = XiBelief{1.1, 0.15};
  in.deadline = 0.08;
  in.period = 0.08;
  in.use_idle_ratio = true;
  in.idle_ratio = 0.22;
  in.percentile = 0.95;  // Eq. 12: must stay on the scalar reference path
  std::vector<ConfigScore> scalar, simd;
  ScoreBothWays(in, &scalar, &simd);
  ExpectScoresBitIdentical(scalar, simd);
}

TEST_F(SimdEquivalenceTest, SelectBestPickIdenticalAcrossGoalsAndLimits) {
  const Watts mid_cap = space_.cap(space_.num_powers() / 2);
  const GoalMode modes[] = {GoalMode::kMinimizeEnergy, GoalMode::kMaximizeAccuracy,
                            GoalMode::kMinimizeLatency};
  const double thresholds[] = {0.0, 0.5, 0.99};
  const Watts limits[] = {1e9, mid_cap, 0.0};
  DecisionEngine::SelectScratch scratch;
  for (const DecisionInputs& in : PropertyInputs(40)) {
    for (const GoalMode mode : modes) {
      for (const double pr_th : thresholds) {
        for (const Watts limit : limits) {
          Goals goals;
          goals.mode = mode;
          goals.deadline = in.deadline;
          goals.accuracy_goal = 0.9;
          goals.energy_budget = 0.5;
          goals.prob_threshold = pr_th;
          engine_.set_simd_enabled(false);
          const auto scalar_sel =
              engine_.SelectBest(goals, goals.energy_budget, in, limit, scratch);
          engine_.set_simd_enabled(true);
          const auto simd_sel =
              engine_.SelectBest(goals, goals.energy_budget, in, limit, scratch);
          EXPECT_EQ(scalar_sel.candidate_index, simd_sel.candidate_index);
          EXPECT_EQ(scalar_sel.power_index, simd_sel.power_index);
          EXPECT_EQ(scalar_sel.feasible, simd_sel.feasible);
        }
      }
    }
  }
}

TEST_F(SimdEquivalenceTest, FusedSelectMatchesMaterializedSelect) {
  // The streaming SelectBest must pick exactly what SelectFromScores picks over a
  // materialized ScoreAll table — in both dispatch modes.
  std::vector<ConfigScore> scores(static_cast<size_t>(engine_.num_entries()));
  DecisionEngine::SelectScratch scratch;
  for (const DecisionInputs& in : PropertyInputs(60)) {
    for (const bool simd_on : {false, true}) {
      engine_.set_simd_enabled(simd_on);
      Goals goals;
      goals.mode = GoalMode::kMinimizeEnergy;
      goals.deadline = in.deadline;
      goals.accuracy_goal = 0.9;
      const auto fused =
          engine_.SelectBest(goals, goals.energy_budget, in, 1e9, scratch);
      engine_.ScoreAll(in, scores);
      const auto materialized =
          engine_.SelectFromScores(goals, goals.energy_budget, scores, 1e9);
      EXPECT_EQ(fused.candidate_index, materialized.candidate_index);
      EXPECT_EQ(fused.power_index, materialized.power_index);
      EXPECT_EQ(fused.feasible, materialized.feasible);
    }
  }
  engine_.set_simd_enabled(true);
}

TEST_F(SimdEquivalenceTest, InfeasibleFallbackHierarchyIdentical) {
  // Goals nothing can satisfy force the latency > accuracy > power fallback; the
  // second streaming pass must reproduce the materialized fallback pick exactly.
  DecisionInputs in;
  in.xi = XiBelief{3.0, 0.4};  // severe slowdown: nothing meets the deadline well
  in.deadline = 0.01;
  in.period = 0.01;
  in.use_idle_ratio = true;
  in.idle_ratio = 0.22;
  std::vector<ConfigScore> scores(static_cast<size_t>(engine_.num_entries()));
  DecisionEngine::SelectScratch scratch;
  for (const GoalMode mode : {GoalMode::kMinimizeEnergy, GoalMode::kMaximizeAccuracy,
                              GoalMode::kMinimizeLatency}) {
    Goals goals;
    goals.mode = mode;
    goals.deadline = in.deadline;
    goals.accuracy_goal = 2.0;  // unreachable accuracy
    goals.energy_budget = 1e-9;  // unreachable energy
    for (const bool simd_on : {false, true}) {
      engine_.set_simd_enabled(simd_on);
      const auto fused = engine_.SelectBest(goals, goals.energy_budget, in,
                                            /*power_limit=*/1e9, scratch);
      EXPECT_FALSE(fused.feasible);
      engine_.ScoreAll(in, scores);
      const auto materialized =
          engine_.SelectFromScores(goals, goals.energy_budget, scores, 1e9);
      EXPECT_FALSE(materialized.feasible);
      EXPECT_EQ(fused.candidate_index, materialized.candidate_index);
      EXPECT_EQ(fused.power_index, materialized.power_index);
    }
  }
  engine_.set_simd_enabled(true);
}

TEST_F(SimdEquivalenceTest, ScoreBatchBitIdenticalToPerJobScoreAll) {
  const size_t entries = static_cast<size_t>(engine_.num_entries());
  std::vector<DecisionInputs> inputs = PropertyInputs(6);
  inputs.push_back(inputs[1]);  // duplicate: exercises the twin-copy path
  inputs.push_back(inputs[3]);
  std::vector<ConfigScore> batch(inputs.size() * entries);
  std::vector<ConfigScore> single(entries);
  engine_.set_simd_enabled(true);
  engine_.ScoreBatch(inputs, batch);
  for (size_t j = 0; j < inputs.size(); ++j) {
    engine_.ScoreAll(inputs[j], single);
    ASSERT_EQ(0, std::memcmp(single.data(), batch.data() + j * entries,
                             entries * sizeof(ConfigScore)))
        << "job " << j;
  }
}

}  // namespace
}  // namespace alert
