// Tests for the beyond-the-paper extensions: the latency-minimization mode
// (Section 3.1's omitted third objective), energy-budget pacing, external power
// limits, and the multi-job coordinator (Section 3.6's future work).
#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/core/multi_job.h"
#include "src/dnn/zoo.h"
#include "src/harness/constraint_grid.h"
#include "src/harness/multi_job_experiment.h"
#include "src/harness/schemes.h"

namespace alert {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  ExtensionsTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_) {}

  InferenceRequest Request(Seconds deadline) const {
    InferenceRequest r;
    r.input_index = 0;
    r.deadline = deadline;
    r.period = deadline;
    return r;
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
};

// --- Latency-minimization mode ---

TEST_F(ExtensionsTest, LatencyModeRequiresBothConstraints) {
  Goals g;
  g.mode = GoalMode::kMinimizeLatency;
  g.deadline = 0.1;
  g.accuracy_goal = 0.9;
  EXPECT_FALSE(g.Valid());  // energy budget missing
  g.energy_budget = 2.0;
  EXPECT_TRUE(g.Valid());
}

TEST_F(ExtensionsTest, LatencyModePicksFastestCompliantConfig) {
  Goals g;
  g.mode = GoalMode::kMinimizeLatency;
  g.deadline = 0.2;  // period only
  g.accuracy_goal = 0.92;
  g.energy_budget = 1e9;  // unconstrained energy
  AlertScheduler s(space_, g);
  const auto d = s.Decide(Request(0.2));
  // Must satisfy the accuracy floor...
  EXPECT_GE(space_.CandidateAccuracy(d.candidate), 0.92);
  // ...and be the fastest such option: the smallest compliant model at a high cap.
  const Seconds chosen = space_.CandidateProfileLatency(d.candidate, d.power_index);
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    for (int pi = 0; pi < space_.num_powers(); ++pi) {
      if (space_.CandidateAccuracy(space_.candidate(ci)) >= 0.92) {
        EXPECT_GE(space_.CandidateProfileLatency(space_.candidate(ci), pi),
                  chosen - 1e-12);
      }
    }
  }
}

TEST_F(ExtensionsTest, LatencyModeEnergyBudgetForcesSlower) {
  Goals loose;
  loose.mode = GoalMode::kMinimizeLatency;
  loose.deadline = 0.2;
  loose.accuracy_goal = 0.9;
  loose.energy_budget = 1e9;
  Goals tight = loose;
  tight.energy_budget = 1.0;
  AlertScheduler s_loose(space_, loose);
  AlertScheduler s_tight(space_, tight);
  const auto d_loose = s_loose.Decide(Request(0.2));
  const auto d_tight = s_tight.Decide(Request(0.2));
  EXPECT_GE(space_.CandidateProfileLatency(d_tight.candidate, d_tight.power_index),
            space_.CandidateProfileLatency(d_loose.candidate, d_loose.power_index));
}

TEST_F(ExtensionsTest, LatencyModeEndToEnd) {
  ExperimentOptions options;
  options.num_inputs = 150;
  options.seed = 23;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                options);
  Goals g;
  g.mode = GoalMode::kMinimizeLatency;
  g.deadline = 0.12;
  g.accuracy_goal = 0.9;
  g.energy_budget = 35.0 * g.deadline;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), g);
  const RunResult r = ex.Run(stack, alert, g);
  EXPECT_GE(r.avg_accuracy, 0.88);
  EXPECT_LE(r.avg_energy, g.energy_budget * 1.05);
  // Latency mode should be faster than energy-minimization under the same floor.
  Goals energy_goals = g;
  energy_goals.mode = GoalMode::kMinimizeEnergy;
  AlertScheduler saver(stack.space(), energy_goals);
  const RunResult r_saver = ex.Run(stack, saver, energy_goals);
  EXPECT_LT(r.avg_latency, r_saver.avg_latency);
}

TEST_F(ExtensionsTest, OracleSupportsLatencyMode) {
  ExperimentOptions options;
  options.num_inputs = 100;
  options.seed = 29;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                options);
  Goals g;
  g.mode = GoalMode::kMinimizeLatency;
  g.deadline = 0.12;
  g.accuracy_goal = 0.9;
  g.energy_budget = 35.0 * g.deadline;
  auto oracle = MakeScheduler(SchemeId::kOracle, ex, g);
  const RunResult r = ex.Run(ex.stack(DnnSetChoice::kBoth), *oracle, g);
  EXPECT_GE(r.avg_accuracy, 0.9);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), g);
  const RunResult r_alert = ex.Run(stack, alert, g);
  // The clairvoyant oracle is at least as fast as ALERT on fixed deadlines.
  EXPECT_LE(r.avg_latency, r_alert.avg_latency + 1e-9);
}

// --- Energy-budget pacing ---

TEST_F(ExtensionsTest, PacingImprovesAccuracyUnderBindingBudget) {
  ExperimentOptions options;
  options.num_inputs = 400;
  options.seed = 31;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                options);
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 1.0 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  g.energy_budget = 22.0 * g.deadline;  // binding envelope
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);

  AlertScheduler plain(stack.space(), g);
  AlertOptions paced_options;
  paced_options.pace_energy_budget = true;
  AlertScheduler paced(stack.space(), g, paced_options);

  const RunResult r_plain = ex.Run(stack, plain, g);
  const RunResult r_paced = ex.Run(stack, paced, g);
  // Pacing spends banked surplus for accuracy while keeping the average within budget.
  EXPECT_LE(r_paced.avg_energy, g.energy_budget * 1.01);
  EXPECT_GE(r_paced.avg_accuracy, r_plain.avg_accuracy - 1e-9);
}

// --- External power limit ---

TEST_F(ExtensionsTest, PowerLimitCapsChosenConfiguration) {
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 0.05;
  g.energy_budget = 1e9;
  AlertScheduler s(space_, g);
  s.set_power_limit(20.0);
  const auto d = s.Decide(Request(0.05));
  EXPECT_LE(d.power_cap, 20.0 + 1e-9);
}

TEST_F(ExtensionsTest, ImpossiblePowerLimitFallsBackToLowestCap) {
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 0.05;
  g.energy_budget = 1e9;
  AlertScheduler s(space_, g);
  s.set_power_limit(1.0);  // below every settable cap
  const auto d = s.Decide(Request(0.05));
  EXPECT_DOUBLE_EQ(d.power_cap, space_.cap(0));
}

// --- Multi-job coordination ---

TEST_F(ExtensionsTest, CoordinatorRespectsSharedBudget) {
  auto models2 = BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth);
  PlatformSimulator sim2(GetPlatform(PlatformId::kCpu1), models2);
  ConfigSpace space2(sim2);

  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 0.08;
  g.energy_budget = 1e9;
  std::vector<JobSpec> jobs;
  for (int j = 0; j < 2; ++j) {
    JobSpec spec;
    spec.name = "job" + std::to_string(j);
    spec.space = j == 0 ? &space_ : &space2;
    spec.goals = g;
    jobs.push_back(std::move(spec));
  }
  // Budget of 40 W for two jobs that would each like 35 W.
  MultiJobCoordinator coordinator(std::move(jobs), 40.0);
  std::vector<InferenceRequest> requests(2, Request(0.08));
  const auto decisions = coordinator.DecideRound(requests);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_LE(decisions[0].power_cap + decisions[1].power_cap, 40.0 + 1e-9);
}

TEST_F(ExtensionsTest, CoordinatorGeneroudBudgetLeavesDesiresAlone) {
  auto models2 = BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth);
  PlatformSimulator sim2(GetPlatform(PlatformId::kCpu1), models2);
  ConfigSpace space2(sim2);
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 0.08;
  g.energy_budget = 1e9;
  std::vector<JobSpec> jobs(2);
  jobs[0] = {.name = "a", .space = &space_, .goals = g, .options = {}};
  jobs[1] = {.name = "b", .space = &space2, .goals = g, .options = {}};
  MultiJobCoordinator coordinator(std::move(jobs), 500.0);
  std::vector<InferenceRequest> requests(2, Request(0.08));
  const auto decisions = coordinator.DecideRound(requests);
  // With a huge budget both jobs get their unconstrained desire (max accuracy at
  // whatever cap they wanted).
  EXPECT_GE(space_.CandidateAccuracy(decisions[0].candidate), 0.94);
}

TEST(MultiJobExperimentTest, CoordinationBeatsUncoordinatedOnBudgetCompliance) {
  MultiJobSpec a;
  a.task = TaskId::kImageClassification;
  a.goals.mode = GoalMode::kMaximizeAccuracy;
  a.goals.deadline = 1.5 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu2);
  a.goals.energy_budget = 1e9;
  a.seed = 1;
  MultiJobSpec b = a;
  b.seed = 2;

  MultiJobExperiment ex(PlatformId::kCpu2, {a, b}, /*num_rounds=*/150, /*seed=*/3);
  const Watts budget = 130.0;
  const MultiJobResult coordinated = ex.RunCoordinated(budget);
  const MultiJobResult uncoordinated = ex.RunUncoordinated(budget);

  EXPECT_EQ(coordinated.budget_overshoot_fraction, 0.0);
  EXPECT_GT(uncoordinated.budget_overshoot_fraction, 0.5);
  EXPECT_LE(coordinated.avg_total_cap, budget + 1e-9);
  // Both jobs still function under coordination.
  for (const RunResult& r : coordinated.per_job) {
    EXPECT_GT(r.avg_accuracy, 0.85);
    EXPECT_LT(r.deadline_miss_fraction, 0.1);
  }
}

}  // namespace
}  // namespace alert
