// Tests for the batched multi-job decision plane: bit-identical equivalence with the
// historical per-scheduler loop, the power-limit state-leak regression, allocation
// edge cases, slack recycling, and the zero-allocation scoring path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "src/core/alert_scheduler.h"
#include "src/core/multi_job.h"
#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

// Global allocation counter for the zero-allocation test.  Every other test in this
// binary runs through the same operators; they only count.
namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace alert {
namespace {

constexpr Watts kInf = std::numeric_limits<double>::infinity();

Goals AccuracyGoals(Seconds deadline) {
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = deadline;
  g.energy_budget = 1e9;
  return g;
}

// A deterministic measurement consistent with the decision: both coordinators in an
// equivalence test observe the exact same feedback, so their beliefs stay identical.
Measurement FakeMeasurement(const SchedulingDecision& d, const ConfigSpace& space,
                            Seconds deadline, int round) {
  const Seconds profile = space.ProfileLatency(d.candidate.model_index, d.power_index);
  const double xi = 1.0 + 0.15 * std::sin(0.37 * round);
  Measurement m;
  m.latency = xi * profile;
  m.period = deadline;
  m.deadline = deadline;
  m.deadline_met = m.latency <= deadline;
  m.energy = d.power_cap * m.latency;
  m.inference_power = d.power_cap;
  m.idle_power = 0.25 * d.power_cap;
  m.accuracy = space.CandidateAccuracy(d.candidate);
  m.xi_anchor_time = xi * profile;
  m.xi_anchor_fraction = 1.0;
  m.xi_censored = false;
  return m;
}

// The pre-refactor MultiJobCoordinator::DecideRound, verbatim: stateful power limits
// and one full Decide per job per pass (including the limit it leaks behind).
std::vector<SchedulingDecision> LegacyDecideRound(
    MultiJobCoordinator& coordinator, const std::vector<InferenceRequest>& requests,
    Watts budget) {
  const int k = coordinator.num_jobs();
  std::vector<SchedulingDecision> decisions(static_cast<size_t>(k));
  Watts desired_total = 0.0;
  for (int j = 0; j < k; ++j) {
    coordinator.job(j).set_power_limit(kInf);
    decisions[static_cast<size_t>(j)] = coordinator.job(j).Decide(requests[static_cast<size_t>(j)]);
    desired_total += decisions[static_cast<size_t>(j)].power_cap;
  }
  if (desired_total <= budget + 1e-9) {
    return decisions;
  }
  const double scale = budget / desired_total;
  for (int j = 0; j < k; ++j) {
    coordinator.job(j).set_power_limit(decisions[static_cast<size_t>(j)].power_cap * scale);
    decisions[static_cast<size_t>(j)] = coordinator.job(j).Decide(requests[static_cast<size_t>(j)]);
  }
  return decisions;
}

void ExpectSameDecisions(const std::vector<SchedulingDecision>& a,
                         const std::vector<SchedulingDecision>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].candidate.model_index, b[j].candidate.model_index) << "job " << j;
    EXPECT_EQ(a[j].candidate.stage_limit, b[j].candidate.stage_limit) << "job " << j;
    EXPECT_EQ(a[j].power_index, b[j].power_index) << "job " << j;
    EXPECT_EQ(a[j].power_cap, b[j].power_cap) << "job " << j;  // exact
  }
}

class MultiJobTest : public ::testing::Test {
 protected:
  MultiJobTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_) {}

  std::vector<JobSpec> SharedFamilyJobs(int k, Seconds deadline) const {
    std::vector<JobSpec> jobs;
    for (int j = 0; j < k; ++j) {
      JobSpec spec;
      spec.name = "job" + std::to_string(j);
      spec.space = &space_;
      // Staggered deadlines: distinct beliefs within one family.
      spec.goals = AccuracyGoals(deadline * (1.0 + 0.05 * (j % 5)));
      jobs.push_back(std::move(spec));
    }
    return jobs;
  }

  static std::vector<InferenceRequest> Requests(const std::vector<JobSpec>& jobs) {
    std::vector<InferenceRequest> requests;
    for (const JobSpec& spec : jobs) {
      requests.push_back(InferenceRequest{0, spec.goals.deadline, spec.goals.deadline});
    }
    return requests;
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
};

// --- Bit-identical equivalence with the historical coordinator ---

TEST_F(MultiJobTest, ProportionalPolicyMatchesLegacyLoopBitForBit) {
  const Seconds deadline = 0.08;
  const Watts budget = 45.0;  // binding: four jobs would each like ~35 W
  auto jobs = SharedFamilyJobs(4, deadline);
  MultiJobCoordinator batched(jobs, budget);
  MultiJobCoordinator legacy(std::move(jobs), budget);
  const auto requests = Requests(SharedFamilyJobs(4, deadline));

  for (int round = 0; round < 40; ++round) {
    const auto batched_decisions = batched.DecideRound(requests);
    const auto legacy_decisions = LegacyDecideRound(legacy, requests, budget);
    ExpectSameDecisions(batched_decisions, legacy_decisions);

    std::vector<Measurement> measurements;
    for (size_t j = 0; j < batched_decisions.size(); ++j) {
      measurements.push_back(FakeMeasurement(batched_decisions[j], space_,
                                             requests[j].deadline, round));
    }
    batched.ObserveRound(batched_decisions, measurements);
    legacy.ObserveRound(legacy_decisions, measurements);
  }
}

TEST_F(MultiJobTest, GenerousBudgetMatchesLegacyLoopBitForBit) {
  auto jobs = SharedFamilyJobs(3, 0.08);
  MultiJobCoordinator batched(jobs, 1000.0);
  MultiJobCoordinator legacy(std::move(jobs), 1000.0);
  const auto requests = Requests(SharedFamilyJobs(3, 0.08));
  ExpectSameDecisions(batched.DecideRound(requests),
                      LegacyDecideRound(legacy, requests, 1000.0));
}

// --- The power-limit state leak (regression) ---

TEST_F(MultiJobTest, DecideRoundLeavesSchedulerPowerLimitsUntouched) {
  const Watts budget = 45.0;
  MultiJobCoordinator coordinator(SharedFamilyJobs(4, 0.08), budget);
  const auto requests = Requests(SharedFamilyJobs(4, 0.08));
  const Watts limit_before = coordinator.job(0).power_limit();

  const auto round = coordinator.DecideRound(requests);  // binding: limits scale
  ASSERT_LT(round[0].power_cap + round[1].power_cap + round[2].power_cap +
                round[3].power_cap,
            4.0 * 35.0);
  EXPECT_EQ(coordinator.job(0).power_limit(), limit_before);

  // A direct Decide on a job after a round must behave exactly like a standalone
  // scheduler with the same history — the historical coordinator corrupted this with
  // its leaked (scaled or infinite) limit.
  AlertScheduler standalone(coordinator.job(0).engine(),
                            AccuracyGoals(requests[0].deadline));
  const SchedulingDecision direct = coordinator.job(0).Decide(requests[0]);
  const SchedulingDecision expected = standalone.Decide(requests[0]);
  EXPECT_EQ(direct.candidate.model_index, expected.candidate.model_index);
  EXPECT_EQ(direct.power_index, expected.power_index);
}

// --- Allocation edge cases ---

TEST_F(MultiJobTest, SingleJobGetsItsUnconstrainedDesire) {
  MultiJobCoordinator coordinator(SharedFamilyJobs(1, 0.08), 500.0);
  const auto requests = Requests(SharedFamilyJobs(1, 0.08));
  AlertScheduler standalone(coordinator.job(0).engine(), AccuracyGoals(0.08));
  const auto round = coordinator.DecideRound(requests);
  const SchedulingDecision expected = standalone.Decide(requests[0]);
  EXPECT_EQ(round[0].power_index, expected.power_index);
  EXPECT_EQ(round[0].candidate.model_index, expected.candidate.model_index);
}

TEST_F(MultiJobTest, BudgetAboveTotalDesireLeavesDesiresAlone) {
  MultiJobCoordinator coordinator(SharedFamilyJobs(3, 0.08), 10000.0);
  const auto requests = Requests(SharedFamilyJobs(3, 0.08));
  const auto round = coordinator.DecideRound(requests);
  for (size_t j = 0; j < round.size(); ++j) {
    AlertScheduler standalone(coordinator.job(static_cast<int>(j)).engine(),
                              AccuracyGoals(requests[j].deadline));
    EXPECT_EQ(round[j].power_index, standalone.Decide(requests[j]).power_index);
  }
}

TEST_F(MultiJobTest, ZeroHeadroomBudgetPinsEveryJobToTheFloorCap) {
  // A budget below any feasible split: every job falls back to the lowest cap (the
  // documented floor exemption — the scheduler must still act).
  MultiJobCoordinator coordinator(SharedFamilyJobs(4, 0.08), 1.0);
  const auto round = coordinator.DecideRound(Requests(SharedFamilyJobs(4, 0.08)));
  for (const SchedulingDecision& d : round) {
    EXPECT_EQ(d.power_index, 0);
    EXPECT_EQ(d.power_cap, space_.cap(0));
  }
}

TEST_F(MultiJobTest, SameFamilyAndDistinctFamiliesDecideIdentically) {
  // Content-identical spaces: one coordinator shares a single family, the other gets
  // one family per job.  Decisions must match field for field.
  ConfigSpace space_b(sim_);
  ConfigSpace space_c(sim_);
  ConfigSpace space_d(sim_);
  const ConfigSpace* distinct[] = {&space_, &space_b, &space_c, &space_d};

  auto shared_jobs = SharedFamilyJobs(4, 0.08);
  std::vector<JobSpec> distinct_jobs = SharedFamilyJobs(4, 0.08);
  for (int j = 0; j < 4; ++j) {
    distinct_jobs[static_cast<size_t>(j)].space = distinct[j];
  }
  const Watts budget = 45.0;
  MultiJobCoordinator shared(std::move(shared_jobs), budget);
  MultiJobCoordinator split(std::move(distinct_jobs), budget);
  EXPECT_EQ(shared.num_families(), 1);
  EXPECT_EQ(split.num_families(), 4);

  const auto requests = Requests(SharedFamilyJobs(4, 0.08));
  ExpectSameDecisions(shared.DecideRound(requests), split.DecideRound(requests));
}

TEST_F(MultiJobTest, FamiliesAreGroupedInFirstAppearanceOrder) {
  ConfigSpace space_b(sim_);
  std::vector<JobSpec> jobs = SharedFamilyJobs(4, 0.08);
  jobs[1].space = &space_b;
  jobs[3].space = &space_b;  // families: {space_: jobs 0,2}, {space_b: jobs 1,3}
  MultiJobCoordinator coordinator(std::move(jobs), 100.0);
  EXPECT_EQ(coordinator.num_families(), 2);
}

// --- Slack recycling ---

TEST_F(MultiJobTest, SlackRecyclingNeverExceedsBudgetAndBeatsProportional) {
  // Mid-grid budget: the proportional split strands watts at the discrete cap steps.
  for (const Watts budget : {40.0, 52.0, 64.0, 76.0, 88.0}) {
    auto jobs = SharedFamilyJobs(4, 0.08);
    MultiJobCoordinator proportional(jobs, budget, AllocationPolicy::kProportional);
    MultiJobCoordinator recycling(std::move(jobs), budget,
                                  AllocationPolicy::kSlackRecycling);
    const auto requests = Requests(SharedFamilyJobs(4, 0.08));
    const auto prop = proportional.DecideRound(requests);
    const auto rec = recycling.DecideRound(requests);

    Watts prop_total = 0.0, rec_total = 0.0;
    for (size_t j = 0; j < prop.size(); ++j) {
      prop_total += prop[j].power_cap;
      rec_total += rec[j].power_cap;
    }
    if (prop_total <= budget + 1e-9) {  // floor-pinned budgets can overshoot for both
      EXPECT_LE(rec_total, budget + 1e-9) << "budget " << budget;
    }
    // Re-offering headroom can only grow the claimed total (selection under a larger
    // limit keeps the previous choice available).
    EXPECT_GE(rec_total, prop_total - 1e-9) << "budget " << budget;
  }
}

TEST_F(MultiJobTest, SlackRecyclingRecoversStrandedHeadroom) {
  // 4 jobs, 87 W: proportional shares (~21.75 W) fall between the CPU1 cap steps, so
  // the proportional split rounds every job down to 20 W and strands 7 W; slack
  // recycling turns that headroom into whole step-ups.
  const Watts budget = 87.0;
  auto jobs = SharedFamilyJobs(4, 0.08);
  MultiJobCoordinator proportional(jobs, budget, AllocationPolicy::kProportional);
  MultiJobCoordinator recycling(std::move(jobs), budget,
                                AllocationPolicy::kSlackRecycling);
  const auto requests = Requests(SharedFamilyJobs(4, 0.08));
  Watts prop_total = 0.0, rec_total = 0.0;
  for (const auto& d : proportional.DecideRound(requests)) prop_total += d.power_cap;
  for (const auto& d : recycling.DecideRound(requests)) rec_total += d.power_cap;
  EXPECT_GT(rec_total, prop_total);
  EXPECT_LE(rec_total, budget + 1e-9);
}

TEST_F(MultiJobTest, SlackRecyclingMatchesProportionalWhenBudgetIsGenerous) {
  auto jobs = SharedFamilyJobs(3, 0.08);
  MultiJobCoordinator proportional(jobs, 5000.0, AllocationPolicy::kProportional);
  MultiJobCoordinator recycling(std::move(jobs), 5000.0,
                                AllocationPolicy::kSlackRecycling);
  const auto requests = Requests(SharedFamilyJobs(3, 0.08));
  ExpectSameDecisions(proportional.DecideRound(requests),
                      recycling.DecideRound(requests));
}

TEST_F(MultiJobTest, ParallelFamilyScoringMatchesSerial) {
  ConfigSpace space_b(sim_);
  auto make_jobs = [&] {
    auto jobs = SharedFamilyJobs(12, 0.08);
    for (size_t j = 1; j < jobs.size(); j += 2) {
      jobs[j].space = &space_b;
    }
    return jobs;
  };
  const Watts budget = 130.0;
  MultiJobCoordinator parallel(make_jobs(), budget);
  parallel.set_parallel_scoring_threshold(1);  // force ParallelFor across families
  MultiJobCoordinator serial(make_jobs(), budget);
  serial.set_parallel_scoring_threshold(1 << 20);
  const auto requests = Requests(make_jobs());
  ExpectSameDecisions(parallel.DecideRound(requests), serial.DecideRound(requests));
}

// --- Zero allocations in the scoring path ---

TEST_F(MultiJobTest, WarmK64HeterogeneousRoundPerformsZeroHeapAllocations) {
  // 64 heterogeneous jobs over three interleaved candidate families, binding budget:
  // once the scratch buffers are warm, a full round — snapshots, batched scoring,
  // desires, allocation re-selection — must not touch the heap.  (ParallelFor is
  // dispatch, not scoring; it is forced off so thread spawns don't count.)
  ConfigSpace space_b(sim_);
  ConfigSpace space_c(sim_);
  auto jobs = SharedFamilyJobs(64, 0.08);
  for (size_t j = 0; j < jobs.size(); ++j) {
    jobs[j].space = j % 3 == 1 ? &space_b : (j % 3 == 2 ? &space_c : &space_);
  }
  MultiJobCoordinator coordinator(std::move(jobs), 64.0 * 20.0);
  coordinator.set_parallel_scoring_threshold(1 << 20);  // serial: no thread spawns
  const auto requests = Requests(SharedFamilyJobs(64, 0.08));
  std::vector<SchedulingDecision> decisions;
  coordinator.DecideRoundInto(requests, &decisions);  // warm every scratch buffer

  for (const AllocationPolicy policy :
       {AllocationPolicy::kProportional, AllocationPolicy::kSlackRecycling}) {
    coordinator.set_allocation_policy(policy);
    coordinator.DecideRoundInto(requests, &decisions);  // warm the policy's scratch
    const size_t before = g_allocations.load(std::memory_order_relaxed);
    coordinator.DecideRoundInto(requests, &decisions);
    const size_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << "policy " << static_cast<int>(policy);
  }
}

// --- Per-job goal reconfiguration under shared family caches ---

// SetJobGoals must drop exactly the entries keyed under the reconfigured job's OLD
// goals: the sibling job in the same family and the whole other family stay hot.
// (A cold-start here would show up as extra misses and a stale count covering every
// live entry — the regression this test pins.)
TEST_F(MultiJobTest, SetJobGoalsInvalidatesOnlyTheOldGoalEntries) {
  // Family A: the fixture's kBoth space, two jobs with DISTINCT goals (so the old-goal
  // invalidation can only match one of them).  Family B: a separate traditional-only
  // space with one job.
  std::vector<DnnModel> models_b =
      BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kTraditionalOnly);
  PlatformSimulator sim_b(GetPlatform(PlatformId::kCpu1), models_b);
  ConfigSpace space_b(sim_b);

  std::vector<JobSpec> jobs(3);
  jobs[0].name = "a0";
  jobs[0].space = &space_;
  jobs[0].goals = AccuracyGoals(0.08);
  jobs[1].name = "a1";
  jobs[1].space = &space_;
  jobs[1].goals = AccuracyGoals(0.10);
  jobs[2].name = "b0";
  jobs[2].space = &space_b;
  jobs[2].goals = AccuracyGoals(0.09);
  MultiJobCoordinator coordinator(jobs, 60.0);
  DecisionCachePolicy policy;
  policy.mode = DecisionCacheMode::kExact;
  coordinator.set_decision_cache_policy(policy);

  std::vector<InferenceRequest> requests;
  for (const JobSpec& spec : jobs) {
    requests.push_back(InferenceRequest{0, spec.goals.deadline, spec.goals.deadline});
  }

  coordinator.DecideRound(requests);
  const DecisionCacheStats cold = coordinator.decision_cache_stats();
  ASSERT_GT(cold.insertions, 0u);
  EXPECT_EQ(cold.stale, 0u);

  // Identical round, beliefs untouched: pure hits.
  const auto warm_decisions = coordinator.DecideRound(requests);
  const DecisionCacheStats warm = coordinator.decision_cache_stats();
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GT(warm.hits, cold.hits);

  // Reconfigure job 0.  Only its old-goal entries may be dropped.
  coordinator.SetJobGoals(0, AccuracyGoals(0.12));
  const DecisionCacheStats flipped = coordinator.decision_cache_stats();
  EXPECT_GT(flipped.stale, 0u);
  EXPECT_LT(flipped.stale, cold.insertions) << "invalidation cold-started the caches";
  EXPECT_EQ(flipped.hits, warm.hits);  // invalidation itself performs no lookups

  // Next round: job 0 re-scores under its new goals (misses grow), jobs 1 and 2 still
  // hit their surviving entries and decide exactly what they decided before.
  const auto after = coordinator.DecideRound(requests);
  const DecisionCacheStats reconfigured = coordinator.decision_cache_stats();
  EXPECT_GT(reconfigured.misses, flipped.misses);
  EXPECT_GT(reconfigured.hits, flipped.hits);
  EXPECT_EQ(after[1].candidate.model_index, warm_decisions[1].candidate.model_index);
  EXPECT_EQ(after[1].candidate.stage_limit, warm_decisions[1].candidate.stage_limit);
  EXPECT_EQ(after[1].power_index, warm_decisions[1].power_index);
  EXPECT_EQ(after[2].candidate.model_index, warm_decisions[2].candidate.model_index);
  EXPECT_EQ(after[2].candidate.stage_limit, warm_decisions[2].candidate.stage_limit);
  EXPECT_EQ(after[2].power_index, warm_decisions[2].power_index);

  // Reconfigure the family-B job: family A's entries must survive untouched — the
  // stale delta stays below the number of entries the caches currently hold.
  const uint64_t live_entries = reconfigured.insertions - reconfigured.stale;
  coordinator.SetJobGoals(2, AccuracyGoals(0.14));
  const DecisionCacheStats flipped_b = coordinator.decision_cache_stats();
  EXPECT_GT(flipped_b.stale, reconfigured.stale);
  EXPECT_LT(flipped_b.stale - reconfigured.stale, live_entries);
  const DecisionCacheStats before_final = flipped_b;
  const auto final_round = coordinator.DecideRound(requests);
  const DecisionCacheStats final_stats = coordinator.decision_cache_stats();
  EXPECT_GT(final_stats.hits, before_final.hits);  // family A still hot
  EXPECT_EQ(final_round[1].power_index, warm_decisions[1].power_index);
}

}  // namespace
}  // namespace alert
