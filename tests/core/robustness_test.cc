// Robustness suites: the empirical-WCET hard-guarantee variant, and ALERT's tolerance
// of systematic profiling error (the global slowdown factor absorbs profile bias —
// the property that makes offline profiles reusable across deployments).
#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/harness/constraint_grid.h"
#include "src/harness/experiment.h"

namespace alert {
namespace {

Goals ImageGoals(GoalMode mode) {
  Goals g;
  g.mode = mode;
  g.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  g.accuracy_goal = 0.9;
  g.energy_budget = 30.0 * g.deadline;
  return g;
}

TEST(WcetModeTest, NearHardGuaranteesUnderContention) {
  ExperimentOptions options;
  options.num_inputs = 500;
  options.seed = 99;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                options);
  const Goals goals = ImageGoals(GoalMode::kMinimizeEnergy);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);

  AlertOptions wcet_options;
  wcet_options.wcet_window = 100;
  AlertScheduler wcet(stack.space(), goals, wcet_options);
  const RunResult r_wcet = ex.Run(stack, wcet, goals);

  AlertScheduler probabilistic(stack.space(), goals);
  const RunResult r_prob = ex.Run(stack, probabilistic, goals);

  // The WCET variant misses (at most) as often as the probabilistic one and pays for
  // it with at least as much energy.
  EXPECT_LE(r_wcet.deadline_miss_fraction, r_prob.deadline_miss_fraction + 1e-9);
  EXPECT_GE(r_wcet.avg_energy, r_prob.avg_energy * 0.98);
  EXPECT_LT(r_wcet.deadline_miss_fraction, 0.02);
}

TEST(WcetModeTest, BeliefIsWindowMaximum) {
  auto models = BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth);
  PlatformSimulator sim(GetPlatform(PlatformId::kCpu1), models);
  ConfigSpace space(sim);
  AlertOptions options;
  options.wcet_window = 4;
  AlertScheduler s(space, ImageGoals(GoalMode::kMinimizeEnergy), options);

  auto observe = [&](double ratio) {
    SchedulingDecision d;
    d.candidate = space.candidate(0);
    d.power_index = 0;
    d.power_cap = space.cap(0);
    Measurement m;
    m.xi_anchor_time = ratio * space.ProfileLatency(0, 0);
    m.xi_anchor_fraction = 1.0;
    m.latency = m.xi_anchor_time;
    m.period = m.latency;
    m.inference_power = 20.0;
    m.idle_power = 6.0;
    s.Observe(d, m);
  };
  observe(1.0);
  observe(1.9);
  observe(1.1);
  EXPECT_NEAR(s.xi_belief().mean, 1.9, 1e-9);
  EXPECT_EQ(s.xi_belief().stddev, 0.0);
  // The 1.9 spike ages out of the 4-observation window.
  observe(1.0);
  observe(1.0);
  observe(1.0);
  observe(1.0);
  EXPECT_NEAR(s.xi_belief().mean, 1.0, 1e-9);
}

class ProfileNoiseTest : public ::testing::TestWithParam<double> {};

TEST_P(ProfileNoiseTest, AlertAbsorbsSystematicProfilingError) {
  // Profiles are perturbed by a systematic lognormal error; the xi feedback loop
  // corrects the bias, so violations stay bounded even at 10% profile error.
  const double noise = GetParam();
  ExperimentOptions options;
  options.num_inputs = 300;
  options.seed = 41;
  options.profile_noise_sigma = noise;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                options);
  const Goals goals = ImageGoals(GoalMode::kMinimizeEnergy);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals);
  EXPECT_LE(r.violation_fraction, 0.12) << "profile noise " << noise;
  EXPECT_GE(r.avg_accuracy, 0.85) << "profile noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, ProfileNoiseTest,
                         ::testing::Values(0.0, 0.02, 0.05, 0.10));

}  // namespace
}  // namespace alert
