#include "src/core/estimates.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/gaussian.h"

namespace alert {
namespace {

TEST(ProbMeetDeadlineTest, MatchesClosedForm) {
  const XiBelief xi{1.2, 0.1};
  const double prof = 0.05;
  const double deadline = 0.07;
  const double expected = StandardNormalCdf((deadline - 1.2 * prof) / (0.1 * prof));
  EXPECT_NEAR(ProbMeetDeadline(xi, prof, deadline), expected, 1e-12);
}

TEST(ProbMeetDeadlineTest, DeterministicBelief) {
  const XiBelief xi{1.0, 0.0};
  EXPECT_EQ(ProbMeetDeadline(xi, 0.05, 0.06), 1.0);
  EXPECT_EQ(ProbMeetDeadline(xi, 0.05, 0.04), 0.0);
}

TEST(ProbMeetDeadlineTest, MonotoneInDeadline) {
  const XiBelief xi{1.0, 0.2};
  double prev = 0.0;
  for (double t = 0.01; t < 0.2; t += 0.01) {
    const double p = ProbMeetDeadline(xi, 0.05, t);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(ProbMeetDeadlineTest, MonotoneDecreasingInProfileLatency) {
  const XiBelief xi{1.0, 0.2};
  double prev = 1.0;
  for (double prof = 0.01; prof < 0.2; prof += 0.01) {
    const double p = ProbMeetDeadline(xi, prof, 0.08);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(ExpectedAccuracyTraditionalTest, LimitsAtExtremes) {
  // Certain to meet: full model accuracy.  Certain to miss: random guess.
  EXPECT_NEAR(ExpectedAccuracyTraditional({1.0, 0.0}, 0.05, 1.0, 0.93, 0.005), 0.93,
              1e-12);
  EXPECT_NEAR(ExpectedAccuracyTraditional({1.0, 0.0}, 0.05, 0.01, 0.93, 0.005), 0.005,
              1e-12);
}

TEST(ExpectedAccuracyTraditionalTest, InterpolatesWithProbability) {
  const XiBelief xi{1.0, 0.1};
  const double pr = ProbMeetDeadline(xi, 0.05, 0.0525);
  const double expected = pr * 0.9 + (1.0 - pr) * 0.005;
  EXPECT_NEAR(ExpectedAccuracyTraditional(xi, 0.05, 0.0525, 0.9, 0.005), expected, 1e-12);
}

class AnytimeAccuracyTest : public ::testing::Test {
 protected:
  const std::vector<AnytimeStage> stages_ = {
      {0.25, 0.80}, {0.50, 0.88}, {0.75, 0.92}, {1.00, 0.95}};
  const double q_fail_ = 0.005;
};

TEST_F(AnytimeAccuracyTest, CertainCompletionGivesFinalAccuracy) {
  EXPECT_NEAR(ExpectedAccuracyAnytime({1.0, 0.0}, 0.05, stages_, -1, 1.0, q_fail_), 0.95,
              1e-12);
}

TEST_F(AnytimeAccuracyTest, DeadlineBetweenStagesPicksLastCompleted) {
  // Deterministic belief, deadline at 0.6 * full latency: stage 1 (0.50) delivered.
  EXPECT_NEAR(ExpectedAccuracyAnytime({1.0, 0.0}, 0.05, stages_, -1, 0.03, q_fail_), 0.88,
              1e-12);
}

TEST_F(AnytimeAccuracyTest, ImpossibleDeadlineGivesRandomGuess) {
  EXPECT_NEAR(ExpectedAccuracyAnytime({1.0, 0.0}, 0.05, stages_, -1, 0.001, q_fail_),
              q_fail_, 1e-12);
}

TEST_F(AnytimeAccuracyTest, StageLimitCapsAccuracy) {
  // With a generous deadline but stage limit 1, accuracy capped at stage 1's.
  EXPECT_NEAR(ExpectedAccuracyAnytime({1.0, 0.0}, 0.05, stages_, 1, 1.0, q_fail_), 0.88,
              1e-12);
}

TEST_F(AnytimeAccuracyTest, ProbabilisticMixtureIsWithinBounds) {
  const XiBelief xi{1.0, 0.3};
  const double q = ExpectedAccuracyAnytime(xi, 0.05, stages_, -1, 0.04, q_fail_);
  EXPECT_GT(q, q_fail_);
  EXPECT_LT(q, 0.95);
}

TEST_F(AnytimeAccuracyTest, MatchesManualMixture) {
  const XiBelief xi{1.0, 0.2};
  const double prof = 0.05;
  const double deadline = 0.04;
  // P(stage k done) = Phi((T/(frac_k * prof) - mu) / sigma).
  auto stage_prob = [&](double frac) {
    return StandardNormalCdf((deadline / (frac * prof) - xi.mean) / xi.stddev);
  };
  const double p0 = stage_prob(0.25);
  const double p1 = stage_prob(0.50);
  const double p2 = stage_prob(0.75);
  const double p3 = stage_prob(1.00);
  const double expected = 0.95 * p3 + 0.92 * (p2 - p3) + 0.88 * (p1 - p2) +
                          0.80 * (p0 - p1) + q_fail_ * (1.0 - p0);
  EXPECT_NEAR(ExpectedAccuracyAnytime(xi, prof, stages_, -1, deadline, q_fail_), expected,
              1e-12);
}

TEST_F(AnytimeAccuracyTest, MoreVolatilityLowersExpectedAccuracyNearBoundary) {
  // Near the completion boundary, higher variance means lower expected accuracy —
  // the mechanism behind ALERT's conservative picks (Section 3.4).
  const double calm =
      ExpectedAccuracyAnytime({1.0, 0.05}, 0.05, stages_, -1, 0.052, q_fail_);
  const double volatile_env =
      ExpectedAccuracyAnytime({1.0, 0.40}, 0.05, stages_, -1, 0.052, q_fail_);
  EXPECT_GT(calm, volatile_env);
}

TEST(ExpectedRuntimeTest, DeterministicMinimum) {
  EXPECT_DOUBLE_EQ(ExpectedRuntime({1.0, 0.0}, 0.05, 0.04), 0.04);
  EXPECT_DOUBLE_EQ(ExpectedRuntime({1.0, 0.0}, 0.05, 0.06), 0.05);
}

TEST(ExpectedRuntimeTest, BoundedByCutoffAndMean) {
  const XiBelief xi{1.0, 0.3};
  const double r = ExpectedRuntime(xi, 0.05, 0.055);
  EXPECT_LE(r, 0.055);
  EXPECT_LE(r, 1.0 * 0.05 + 1e-12);  // E[min(X,c)] <= E[X]
  EXPECT_GT(r, 0.0);
}

TEST(ExpectedRuntimeTest, LooseCutoffApproachesMean) {
  const XiBelief xi{1.2, 0.1};
  EXPECT_NEAR(ExpectedRuntime(xi, 0.05, 10.0), 0.06, 1e-6);
}

TEST(EstimateEnergyTest, ExpectationDecomposition) {
  const XiBelief xi{1.0, 0.0};
  // run = 0.05, period = 0.1, inference 30 W, idle 6 W.
  const double e = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.1, 0.1, true, 0.0);
  EXPECT_NEAR(e, 30.0 * 0.05 + 6.0 * 0.05, 1e-12);
}

TEST(EstimateEnergyTest, NoIdleWhenRunFillsPeriod) {
  const XiBelief xi{2.0, 0.0};
  const double e = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.08, 0.08, true, 0.0);
  EXPECT_NEAR(e, 30.0 * 0.08, 1e-12);  // capped at cutoff, no idle time
}

TEST(EstimateEnergyTest, PercentileIsMoreConservative) {
  // Eq. 12: charging the 95th-percentile latency yields a higher energy estimate than
  // the mean when inference power exceeds idle power.
  const XiBelief xi{1.0, 0.2};
  const double mean_e = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.2, 0.2, true, 0.0);
  const double pct_e = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.2, 0.2, true, 0.95);
  EXPECT_GT(pct_e, mean_e);
}

TEST(EstimateEnergyTest, PercentileReducesToMeanWhenDeterministic) {
  const XiBelief xi{1.0, 0.0};
  const double a = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.2, 0.2, true, 0.0);
  const double b = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.2, 0.2, true, 0.95);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(EstimateEnergyTest, UnstoppedRunUsesFullMean) {
  const XiBelief xi{2.0, 0.0};
  // Not stopped at the cutoff: the job runs to its full expected latency.
  const double e = EstimateEnergy(xi, 0.05, 30.0, 6.0, 0.08, 0.08, false, 0.0);
  EXPECT_NEAR(e, 30.0 * 0.1, 1e-12);
}

}  // namespace
}  // namespace alert
