#include "src/core/decision_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "src/core/estimates.h"
#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

// The engine's memoized Gaussian table is accurate to ~1e-7; golden comparisons
// against the exact erf-based estimates use a slightly looser tolerance.
constexpr double kTol = 1e-6;

class DecisionEngineTest : public ::testing::Test {
 protected:
  DecisionEngineTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_), engine_(space_) {}

  // The pre-refactor inline estimate (AlertScheduler::Estimate as it stood before the
  // engine existed), computed with the exact estimates.h functions.
  ConfigScore InlineEstimate(const Configuration& config,
                             const DecisionInputs& in) const {
    const Candidate& c = config.candidate;
    const DnnModel& model = space_.model(c.model_index);
    const double q_fail = TaskRandomGuessAccuracy(model.task);
    const Seconds run_profile = space_.CandidateProfileLatency(c, config.power_index);

    ConfigScore est;
    est.prob_deadline = ProbMeetDeadline(in.xi, run_profile, in.deadline);
    if (c.stage_limit < 0) {
      est.expected_accuracy = ExpectedAccuracyTraditional(
          in.xi, run_profile, in.deadline, model.accuracy, q_fail);
    } else {
      est.expected_accuracy = ExpectedAccuracyAnytime(
          in.xi, space_.ProfileLatency(c.model_index, config.power_index),
          model.anytime_stages, c.stage_limit, in.deadline, q_fail);
    }
    const Watts inference_power =
        space_.InferencePower(c.model_index, config.power_index);
    const Watts idle = in.use_idle_ratio ? in.idle_ratio * inference_power
                                         : in.fixed_idle_power;
    est.expected_energy =
        EstimateEnergy(in.xi, run_profile, inference_power, idle, in.period,
                       in.deadline, /*stop_at_cutoff=*/true, in.percentile);
    est.expected_latency = ExpectedRuntime(in.xi, run_profile, in.deadline);
    return est;
  }

  DecisionInputs Inputs(double mean, double stddev) const {
    DecisionInputs in;
    in.xi = XiBelief{mean, stddev};
    in.deadline = 0.08;
    in.period = 0.08;
    in.use_idle_ratio = true;
    in.idle_ratio = 0.22;
    return in;
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
  DecisionEngine engine_;
};

TEST_F(DecisionEngineTest, FlattensTheFullConfigurationSpace) {
  EXPECT_EQ(engine_.num_candidates(), space_.num_candidates());
  EXPECT_EQ(engine_.num_powers(), space_.num_powers());
  EXPECT_EQ(engine_.num_entries(), space_.num_configurations());
}

TEST_F(DecisionEngineTest, GoldenMatchesInlineEstimatesAcrossTheSpace) {
  // Every (candidate, power) cell — traditional and anytime — under a calm and a
  // volatile belief must reproduce the pre-refactor inline estimates.
  for (const DecisionInputs& in : {Inputs(1.0, 0.05), Inputs(1.4, 0.3)}) {
    for (int ci = 0; ci < space_.num_candidates(); ++ci) {
      for (int pi = 0; pi < space_.num_powers(); ++pi) {
        const ConfigScore got = engine_.Score(ci, pi, in);
        const ConfigScore want =
            InlineEstimate(Configuration{space_.candidate(ci), pi}, in);
        EXPECT_NEAR(got.prob_deadline, want.prob_deadline, kTol)
            << "candidate " << ci << " power " << pi;
        EXPECT_NEAR(got.expected_accuracy, want.expected_accuracy, kTol);
        EXPECT_NEAR(got.expected_energy, want.expected_energy,
                    kTol * std::max(1.0, want.expected_energy));
        EXPECT_NEAR(got.expected_latency, want.expected_latency, kTol);
      }
    }
  }
}

TEST_F(DecisionEngineTest, SigmaZeroDegeneratesToAlertStarExactly) {
  // ALERT* (mean-only) uses step functions, not Gaussian tails, so the engine must be
  // bit-exact with the inline math — no table involved.
  const DecisionInputs in = Inputs(1.1, 0.0);
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    for (int pi = 0; pi < space_.num_powers(); ++pi) {
      const ConfigScore got = engine_.Score(ci, pi, in);
      const ConfigScore want =
          InlineEstimate(Configuration{space_.candidate(ci), pi}, in);
      EXPECT_EQ(got.prob_deadline, want.prob_deadline);
      EXPECT_EQ(got.expected_accuracy, want.expected_accuracy);
      EXPECT_EQ(got.expected_energy, want.expected_energy);
      EXPECT_EQ(got.expected_latency, want.expected_latency);
      EXPECT_TRUE(got.prob_deadline == 0.0 || got.prob_deadline == 1.0);
    }
  }
}

TEST_F(DecisionEngineTest, PercentileEnergyMatchesEq12) {
  DecisionInputs in = Inputs(1.2, 0.25);
  in.percentile = 0.99;
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    const ConfigScore got = engine_.Score(ci, space_.default_power_index(), in);
    const ConfigScore want = InlineEstimate(
        Configuration{space_.candidate(ci), space_.default_power_index()}, in);
    EXPECT_NEAR(got.expected_energy, want.expected_energy,
                kTol * std::max(1.0, want.expected_energy));
  }
}

TEST_F(DecisionEngineTest, ScoreByCandidateValueMatchesScoreByIndex) {
  const DecisionInputs in = Inputs(1.0, 0.1);
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    const ConfigScore by_index = engine_.Score(ci, 3, in);
    const ConfigScore by_value = engine_.Score(space_.candidate(ci), 3, in);
    EXPECT_EQ(by_index.expected_accuracy, by_value.expected_accuracy);
    EXPECT_EQ(by_index.expected_energy, by_value.expected_energy);
  }
}

TEST_F(DecisionEngineTest, ScoreAllMatchesPerEntryScores) {
  const DecisionInputs in = Inputs(1.3, 0.2);
  std::vector<ConfigScore> all(static_cast<size_t>(engine_.num_entries()));
  engine_.ScoreAll(in, all);
  for (int ci = 0; ci < engine_.num_candidates(); ++ci) {
    for (int pi = 0; pi < engine_.num_powers(); ++pi) {
      const ConfigScore one = engine_.Score(ci, pi, in);
      const ConfigScore& batch =
          all[static_cast<size_t>(engine_.entry_index(ci, pi))];
      EXPECT_EQ(one.prob_deadline, batch.prob_deadline);
      EXPECT_EQ(one.expected_energy, batch.expected_energy);
    }
  }
}

TEST_F(DecisionEngineTest, SelectBestAgreesWithExhaustiveArgmin) {
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9;
  const DecisionInputs in = Inputs(1.05, 0.1);
  DecisionEngine::SelectScratch scratch;
  const auto sel = engine_.SelectBest(goals, goals.energy_budget, in,
                                      /*power_limit=*/1e9, scratch);
  ASSERT_TRUE(sel.feasible);
  const ConfigScore chosen = engine_.Score(sel.candidate_index, sel.power_index, in);
  EXPECT_GE(chosen.expected_accuracy, goals.accuracy_goal);
  for (int ci = 0; ci < engine_.num_candidates(); ++ci) {
    for (int pi = 0; pi < engine_.num_powers(); ++pi) {
      const ConfigScore s = engine_.Score(ci, pi, in);
      if (s.expected_accuracy >= goals.accuracy_goal) {
        EXPECT_GE(s.expected_energy, chosen.expected_energy - 1e-9);
      }
    }
  }
}

TEST_F(DecisionEngineTest, InfeasibleGoalFallsBackToSafeHighAccuracy) {
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9999;  // unreachable
  const DecisionInputs in = Inputs(1.0, 0.05);
  DecisionEngine::SelectScratch scratch;
  const auto sel = engine_.SelectBest(goals, goals.energy_budget, in, 1e9, scratch);
  EXPECT_FALSE(sel.feasible);
  const ConfigScore chosen = engine_.Score(sel.candidate_index, sel.power_index, in);
  EXPECT_GT(chosen.prob_deadline, 0.9);
}

TEST_F(DecisionEngineTest, PowerLimitExcludesHighCapsButKeepsTheFloor) {
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9;
  const DecisionInputs in = Inputs(1.0, 0.1);
  DecisionEngine::SelectScratch scratch;
  // A limit below every cap: only the lowest cap (always available) may be chosen.
  const auto sel = engine_.SelectBest(goals, goals.energy_budget, in,
                                      /*power_limit=*/0.0, scratch);
  EXPECT_EQ(sel.power_index, 0);
}

// --- Batch API (multi-job decision plane) ---

TEST_F(DecisionEngineTest, ScoreBatchMatchesPerJobScoreAllBitForBit) {
  const size_t entries = static_cast<size_t>(engine_.num_entries());
  // Distinct beliefs plus exact duplicates (jobs 0/2 and 1/4): the dedup path must
  // reproduce rescoring exactly.
  const std::vector<DecisionInputs> inputs = {Inputs(1.0, 0.1), Inputs(1.3, 0.25),
                                              Inputs(1.0, 0.1), Inputs(0.9, 0.0),
                                              Inputs(1.3, 0.25)};
  std::vector<ConfigScore> batch(inputs.size() * entries);
  engine_.ScoreBatch(inputs, batch);
  std::vector<ConfigScore> single(entries);
  for (size_t j = 0; j < inputs.size(); ++j) {
    engine_.ScoreAll(inputs[j], single);
    for (size_t e = 0; e < entries; ++e) {
      const ConfigScore& got = batch[j * entries + e];
      EXPECT_EQ(got.prob_deadline, single[e].prob_deadline) << "job " << j;
      EXPECT_EQ(got.expected_accuracy, single[e].expected_accuracy);
      EXPECT_EQ(got.expected_energy, single[e].expected_energy);
      EXPECT_EQ(got.expected_latency, single[e].expected_latency);
    }
  }
}

TEST_F(DecisionEngineTest, SelectFromScoresMatchesSelectBestAcrossModesAndLimits) {
  const std::vector<ConfigScore>::size_type entries =
      static_cast<size_t>(engine_.num_entries());
  std::vector<ConfigScore> scores(entries);
  DecisionEngine::SelectScratch scratch;
  for (const DecisionInputs& in :
       {Inputs(1.0, 0.08), Inputs(1.4, 0.3), Inputs(1.1, 0.0)}) {
    engine_.ScoreAll(in, scores);
    for (int mode = 0; mode < 3; ++mode) {
      Goals goals;
      goals.mode = static_cast<GoalMode>(mode);
      goals.deadline = in.deadline;
      goals.accuracy_goal = 0.9;
      goals.energy_budget = 2.0;
      for (const Watts limit : {1e9, 30.0, 17.3, 0.0}) {
        const auto direct =
            engine_.SelectBest(goals, goals.energy_budget, in, limit, scratch);
        const auto from_scores =
            engine_.SelectFromScores(goals, goals.energy_budget, scores, limit);
        EXPECT_EQ(direct.candidate_index, from_scores.candidate_index)
            << "mode " << mode << " limit " << limit;
        EXPECT_EQ(direct.power_index, from_scores.power_index);
        EXPECT_EQ(direct.feasible, from_scores.feasible);
      }
    }
  }
}

TEST_F(DecisionEngineTest, SelectFromScoresMatchesSelectBestWithProbThreshold) {
  // The Pr_th pre-filter (Eqs. 10/11) and the unreachable-goal fallback hierarchy must
  // survive the split into score + select.
  const DecisionInputs in = Inputs(1.2, 0.2);
  std::vector<ConfigScore> scores(static_cast<size_t>(engine_.num_entries()));
  engine_.ScoreAll(in, scores);
  DecisionEngine::SelectScratch scratch;
  for (const double pr_th : {0.9, 0.999999}) {
    Goals goals;
    goals.mode = GoalMode::kMinimizeEnergy;
    goals.deadline = in.deadline;
    goals.accuracy_goal = 0.97;
    goals.prob_threshold = pr_th;
    const auto direct = engine_.SelectBest(goals, 0.0, in, 1e9, scratch);
    const auto from_scores = engine_.SelectFromScores(goals, 0.0, scores, 1e9);
    EXPECT_EQ(direct.candidate_index, from_scores.candidate_index) << "pr " << pr_th;
    EXPECT_EQ(direct.power_index, from_scores.power_index);
    EXPECT_EQ(direct.feasible, from_scores.feasible);
  }
}

TEST_F(DecisionEngineTest, SelectBestBatchMatchesPerJobSelectBest) {
  const std::vector<DecisionInputs> inputs = {Inputs(1.0, 0.1), Inputs(1.25, 0.2),
                                              Inputs(1.0, 0.1)};
  std::vector<Goals> goals(3);
  for (size_t j = 0; j < goals.size(); ++j) {
    goals[j].mode = j == 1 ? GoalMode::kMinimizeEnergy : GoalMode::kMaximizeAccuracy;
    goals[j].deadline = 0.08;
    goals[j].accuracy_goal = 0.9;
    goals[j].energy_budget = 2.5;
  }
  const std::vector<Joules> allowances = {2.5, 0.0, 1.8};
  const std::vector<Watts> limits = {1e9, 25.0, 15.0};
  std::vector<DecisionEngine::Selection> out(3);
  std::vector<ConfigScore> batch_scratch;
  engine_.SelectBestBatch(inputs, goals, allowances, limits, out, batch_scratch);

  DecisionEngine::SelectScratch scratch;
  for (size_t j = 0; j < inputs.size(); ++j) {
    const auto direct =
        engine_.SelectBest(goals[j], allowances[j], inputs[j], limits[j], scratch);
    EXPECT_EQ(out[j].candidate_index, direct.candidate_index) << "job " << j;
    EXPECT_EQ(out[j].power_index, direct.power_index);
    EXPECT_EQ(out[j].feasible, direct.feasible);
  }
}

TEST_F(DecisionEngineTest, ConcurrentScoringIsRaceFreeAndDeterministic) {
  // One const engine instance scanned by many threads (the ParallelFor sweep shape):
  // every thread must reproduce the single-threaded scores bit-for-bit.
  const DecisionInputs calm = Inputs(1.0, 0.08);
  const DecisionInputs loaded = Inputs(1.5, 0.35);
  std::vector<ConfigScore> want_calm(static_cast<size_t>(engine_.num_entries()));
  std::vector<ConfigScore> want_loaded(static_cast<size_t>(engine_.num_entries()));
  engine_.ScoreAll(calm, want_calm);
  engine_.ScoreAll(loaded, want_loaded);

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      const DecisionInputs& in = t % 2 == 0 ? calm : loaded;
      const std::vector<ConfigScore>& want = t % 2 == 0 ? want_calm : want_loaded;
      std::vector<ConfigScore> got(static_cast<size_t>(engine_.num_entries()));
      for (int r = 0; r < kRounds; ++r) {
        engine_.ScoreAll(in, got);
        for (size_t e = 0; e < got.size(); ++e) {
          if (got[e].expected_energy != want[e].expected_energy ||
              got[e].expected_accuracy != want[e].expected_accuracy) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (std::thread& th : pool) {
    th.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace alert
