#include "src/sim/simulator.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/dnn/zoo.h"

namespace alert {
namespace {

class SimulatorTest : public ::testing::Test {
 protected:
  SimulatorTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_) {}

  static ExecutionContext QuietContext() { return ExecutionContext{}; }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
};

TEST_F(SimulatorTest, NominalLatencyScalesWithSpeedCurve) {
  const PlatformSpec& p = GetPlatform(PlatformId::kCpu1);
  const Seconds at_max = sim_.NominalLatency(0, p.cap_max);
  const Seconds at_min = sim_.NominalLatency(0, p.cap_min);
  EXPECT_DOUBLE_EQ(at_max, models_[0].ref_latency_on(PlatformId::kCpu1));
  EXPECT_NEAR(at_min / at_max, 1.0 / p.curve.speed_min, 1e-9);
}

TEST_F(SimulatorTest, InferencePowerCapBindsForSmallCaps) {
  // At the lowest cap the package draw equals cap + base power.
  const PlatformSpec& p = GetPlatform(PlatformId::kCpu1);
  EXPECT_DOUBLE_EQ(sim_.InferencePower(4, p.cap_min), p.cap_min + p.base_power);
}

TEST_F(SimulatorTest, InferencePowerDemandBindsForLargeCaps) {
  const PlatformSpec& p = GetPlatform(PlatformId::kCpu1);
  const DnnModel& m = models_[0];  // smallest, lowest demand
  const Watts demand = m.power_demand_frac * p.curve.cap_sat;
  ASSERT_LT(demand, p.cap_max);
  EXPECT_DOUBLE_EQ(sim_.InferencePower(0, p.cap_max), demand + p.base_power);
}

TEST_F(SimulatorTest, IdlePowerIncludesContention) {
  ExecutionContext ctx;
  const Watts quiet = sim_.IdlePower(ctx);
  ctx.extra_idle_power = 6.0;
  EXPECT_DOUBLE_EQ(sim_.IdlePower(ctx), quiet + 6.0);
}

TEST_F(SimulatorTest, TrueLatencyAppliesAllFactors) {
  ExecutionContext ctx;
  ctx.contention = ContentionType::kMemory;
  ctx.contention_active = true;
  ctx.contention_multiplier = 1.5;
  ctx.input_factor = 1.1;
  ctx.noise_multiplier = 0.9;
  ctx.tail_multiplier = 2.0;
  ctx.drift_multiplier = 1.2;
  const DnnModel& m = models_[2];
  const double sens = m.ContentionSensitivity(ContentionType::kMemory);
  const double expected = sim_.NominalLatency(2, 30.0) * (1.0 + 0.5 * sens) * 1.1 * 0.9 *
                          2.0 * 1.2;
  EXPECT_NEAR(sim_.TrueLatency(2, 30.0, ctx), expected, 1e-12);
}

TEST_F(SimulatorTest, TraditionalMeetsDeadline) {
  ExecRequest req;
  req.model_index = 0;
  req.power_cap = 35.0;
  req.deadline = 1.0;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_TRUE(m.deadline_met);
  EXPECT_DOUBLE_EQ(m.accuracy, models_[0].accuracy);
  EXPECT_EQ(m.delivered_stage, -1);
  EXPECT_FALSE(m.xi_censored);
  EXPECT_DOUBLE_EQ(m.xi_anchor_fraction, 1.0);
  EXPECT_DOUBLE_EQ(m.xi_anchor_time, m.latency);
}

TEST_F(SimulatorTest, TraditionalMissDeliversRandomGuess) {
  ExecRequest req;
  req.model_index = 4;  // largest
  req.power_cap = 35.0;
  req.deadline = 0.001;  // impossible
  req.stop_at_deadline = false;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_FALSE(m.deadline_met);
  EXPECT_DOUBLE_EQ(m.accuracy, TaskRandomGuessAccuracy(TaskId::kImageClassification));
  // Runs to completion: the full latency is observed, not censored.
  EXPECT_FALSE(m.xi_censored);
  EXPECT_GT(m.latency, req.deadline);
}

TEST_F(SimulatorTest, TraditionalKilledAtDeadlineIsCensored) {
  ExecRequest req;
  req.model_index = 4;
  req.power_cap = 35.0;
  req.deadline = 0.001;
  req.stop_at_deadline = true;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_FALSE(m.deadline_met);
  EXPECT_TRUE(m.xi_censored);
  EXPECT_DOUBLE_EQ(m.latency, req.deadline);
}

TEST_F(SimulatorTest, AnytimeDeliversFinalStageWhenTimeAllows) {
  const int any = 5;
  ASSERT_TRUE(models_[static_cast<size_t>(any)].is_anytime());
  ExecRequest req;
  req.model_index = any;
  req.power_cap = 35.0;
  req.deadline = 1.0;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_TRUE(m.deadline_met);
  EXPECT_EQ(m.delivered_stage, 4);
  EXPECT_DOUBLE_EQ(m.accuracy, models_[static_cast<size_t>(any)].accuracy);
  // Stops at completion, before the deadline.
  EXPECT_LT(m.latency, req.deadline);
}

TEST_F(SimulatorTest, AnytimeTruncatedAtDeadlineDeliversEarlierStage) {
  const int any = 5;
  const DnnModel& m = models_[static_cast<size_t>(any)];
  const Seconds full = sim_.NominalLatency(any, 35.0);
  // Deadline between stage 2 and stage 3 completion.
  ExecRequest req;
  req.model_index = any;
  req.power_cap = 35.0;
  req.deadline = full * 0.7;  // stages at 0.22/0.38/0.58/0.79/1.0
  const Measurement meas = sim_.Execute(req, QuietContext());
  EXPECT_TRUE(meas.deadline_met);
  EXPECT_EQ(meas.delivered_stage, 2);
  EXPECT_DOUBLE_EQ(meas.accuracy, m.anytime_stages[2].accuracy);
  EXPECT_DOUBLE_EQ(meas.latency, req.deadline);  // ran until the deadline
  // The anchor is the last completed stage: observable and uncensored.
  EXPECT_FALSE(meas.xi_censored);
  EXPECT_DOUBLE_EQ(meas.xi_anchor_fraction, m.anytime_stages[2].latency_fraction);
}

TEST_F(SimulatorTest, AnytimeStageLimitStopsEarly) {
  const int any = 5;
  ExecRequest req;
  req.model_index = any;
  req.power_cap = 35.0;
  req.deadline = 1.0;
  req.max_anytime_stage = 1;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_EQ(m.delivered_stage, 1);
  EXPECT_DOUBLE_EQ(m.accuracy,
                   models_[static_cast<size_t>(any)].anytime_stages[1].accuracy);
  const Seconds full = sim_.NominalLatency(any, 35.0);
  EXPECT_NEAR(m.latency,
              full * models_[static_cast<size_t>(any)].anytime_stages[1].latency_fraction,
              1e-12);
}

TEST_F(SimulatorTest, AnytimeImpossibleDeadlineIsCensoredGuess) {
  const int any = 5;
  ExecRequest req;
  req.model_index = any;
  req.power_cap = 35.0;
  req.deadline = 1e-5;  // even stage 0 cannot finish
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_FALSE(m.deadline_met);
  EXPECT_EQ(m.delivered_stage, -1);
  EXPECT_TRUE(m.xi_censored);
  EXPECT_DOUBLE_EQ(m.accuracy, TaskRandomGuessAccuracy(TaskId::kImageClassification));
}

TEST_F(SimulatorTest, EnergyAccountingIdentity) {
  ExecRequest req;
  req.model_index = 2;
  req.power_cap = 20.0;
  req.deadline = 0.2;
  req.period = 0.2;
  const Measurement m = sim_.Execute(req, QuietContext());
  const double expected =
      m.inference_power * m.latency + m.idle_power * (m.period - m.latency);
  EXPECT_NEAR(m.energy, expected, 1e-9);
}

TEST_F(SimulatorTest, PeriodExtendsWhenJobOverruns) {
  ExecRequest req;
  req.model_index = 4;
  req.power_cap = 10.0;
  req.deadline = 0.001;
  req.stop_at_deadline = false;
  const Measurement m = sim_.Execute(req, QuietContext());
  EXPECT_GT(m.period, req.deadline);
  EXPECT_DOUBLE_EQ(m.period, m.latency);
  // No idle time in an overrun period.
  EXPECT_NEAR(m.energy, m.inference_power * m.latency, 1e-9);
}

TEST_F(SimulatorTest, HigherCapNeverSlower) {
  for (int model = 0; model < static_cast<int>(models_.size()); ++model) {
    Seconds prev = 1e9;
    for (Watts cap : GetPlatform(PlatformId::kCpu1).PowerSettings()) {
      const Seconds lat = sim_.NominalLatency(model, cap);
      EXPECT_LE(lat, prev + 1e-12);
      prev = lat;
    }
  }
}

// The Fig. 3 shape: periodic-input energy across the cap range has its minimum at the
// lowest cap, an interior maximum, and declines toward the saturation cap; the latency
// span is ~2x.
TEST(Fig3ShapeTest, ResNet50OnCpu2) {
  const std::vector<DnnModel> models = {BuildResNet50()};
  const PlatformSpec& p = GetPlatform(PlatformId::kCpu2);
  PlatformSimulator sim(p, models);

  const Seconds period = sim.NominalLatency(0, 40.0);  // period = latency at 40 W
  EXPECT_NEAR(period / sim.NominalLatency(0, 100.0), 2.0, 0.05);

  std::vector<double> energies;
  ExecutionContext ctx;
  for (Watts cap = 40.0; cap <= 100.0; cap += 2.0) {
    ExecRequest req;
    req.model_index = 0;
    req.power_cap = cap;
    req.deadline = period;
    req.period = period;
    energies.push_back(sim.Execute(req, ctx).energy);
  }
  // Minimum at the lowest cap.
  for (size_t i = 1; i < energies.size(); ++i) {
    EXPECT_GE(energies[i], energies[0] - 1e-9);
  }
  // Interior maximum, not at either end.
  size_t argmax = 0;
  for (size_t i = 0; i < energies.size(); ++i) {
    if (energies[i] > energies[argmax]) {
      argmax = i;
    }
  }
  EXPECT_GT(argmax, 3u);
  EXPECT_LT(argmax, energies.size() - 3);
  // The paper quotes the most energy-hungry cap at ~1.3x the least.
  EXPECT_GT(energies[argmax] / energies[0], 1.15);
  EXPECT_LT(energies[argmax] / energies[0], 1.45);
}

}  // namespace
}  // namespace alert
