#include "src/sim/power_manager.h"

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(PowerManagerTest, StartsAtMaxCap) {
  PowerManager pm(GetPlatform(PlatformId::kCpu1));
  EXPECT_DOUBLE_EQ(pm.current_cap(), 35.0);
}

TEST(PowerManagerTest, QuantizesToStep) {
  PowerManager pm(GetPlatform(PlatformId::kCpu1));
  EXPECT_DOUBLE_EQ(pm.SetCap(13.7), 12.5);
  EXPECT_DOUBLE_EQ(pm.SetCap(13.8), 15.0);
}

TEST(PowerManagerTest, ClampsToRange) {
  PowerManager pm(GetPlatform(PlatformId::kCpu1));
  EXPECT_DOUBLE_EQ(pm.SetCap(5.0), 10.0);
  EXPECT_DOUBLE_EQ(pm.SetCap(500.0), 35.0);
}

TEST(PowerManagerTest, QuantizeDoesNotChangeState) {
  PowerManager pm(GetPlatform(PlatformId::kCpu2));
  pm.SetCap(60.0);
  EXPECT_DOUBLE_EQ(pm.Quantize(97.0), 95.0);
  EXPECT_DOUBLE_EQ(pm.current_cap(), 60.0);
}

TEST(PowerManagerTest, NumSettingsMatchesPlatform) {
  PowerManager pm(GetPlatform(PlatformId::kCpu2));
  EXPECT_EQ(pm.NumSettings(), 13);
}

TEST(PowerManagerTest, ExactSettingsPassThrough) {
  PowerManager pm(GetPlatform(PlatformId::kGpu));
  for (Watts cap : GetPlatform(PlatformId::kGpu).PowerSettings()) {
    EXPECT_DOUBLE_EQ(pm.SetCap(cap), cap);
  }
}

}  // namespace
}  // namespace alert
