#include "src/sim/platform.h"

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(PowerCurveTest, SaturatesAtOne) {
  const PowerCurve c{.cap_min = 40.0, .cap_sat = 84.0, .speed_min = 0.5, .gamma = 2.3};
  EXPECT_DOUBLE_EQ(c.SpeedAt(84.0), 1.0);
  EXPECT_DOUBLE_EQ(c.SpeedAt(100.0), 1.0);
}

TEST(PowerCurveTest, FloorAtMinimumCap) {
  const PowerCurve c{.cap_min = 40.0, .cap_sat = 84.0, .speed_min = 0.5, .gamma = 2.3};
  EXPECT_DOUBLE_EQ(c.SpeedAt(40.0), 0.5);
  EXPECT_DOUBLE_EQ(c.SpeedAt(10.0), 0.5);
}

TEST(PowerCurveTest, MonotoneNonDecreasing) {
  const PowerCurve c{.cap_min = 10.0, .cap_sat = 30.0, .speed_min = 0.45, .gamma = 2.2};
  double prev = 0.0;
  for (double cap = 10.0; cap <= 35.0; cap += 0.5) {
    const double s = c.SpeedAt(cap);
    EXPECT_GE(s, prev);
    EXPECT_GE(s, 0.45);
    EXPECT_LE(s, 1.0);
    prev = s;
  }
}

TEST(PowerCurveTest, ConvexGainsConcentrateNearSaturation) {
  // gamma > 1: the second half of the cap range buys more speed than the first half.
  const PowerCurve c{.cap_min = 40.0, .cap_sat = 84.0, .speed_min = 0.5, .gamma = 2.3};
  const double mid = c.SpeedAt(62.0);
  EXPECT_LT(mid - c.SpeedAt(40.0), c.SpeedAt(84.0) - mid);
}

TEST(PlatformTest, AllPlatformsDefined) {
  for (PlatformId id : {PlatformId::kEmbedded, PlatformId::kCpu1, PlatformId::kCpu2,
                        PlatformId::kGpu}) {
    const PlatformSpec& p = GetPlatform(id);
    EXPECT_EQ(p.id, id);
    EXPECT_GT(p.cap_max, p.cap_min);
    EXPECT_GT(p.cap_step, 0.0);
    EXPECT_GT(p.base_power, 0.0);
    EXPECT_GT(p.idle_power, 0.0);
    EXPECT_LT(p.idle_power + p.base_power, p.cap_max + p.base_power);
  }
}

TEST(PlatformTest, SpecsAreSingletons) {
  EXPECT_EQ(&GetPlatform(PlatformId::kCpu1), &GetPlatform(PlatformId::kCpu1));
}

TEST(PlatformTest, Cpu1HasElevenSettings) {
  // 10-35 W at 2.5 W steps (Section 4's laptop interval).
  EXPECT_EQ(GetPlatform(PlatformId::kCpu1).PowerSettings().size(), 11u);
}

TEST(PlatformTest, Cpu2SettingsAtFiveWattInterval) {
  const auto caps = GetPlatform(PlatformId::kCpu2).PowerSettings();
  EXPECT_EQ(caps.size(), 13u);  // 40..100 by 5
  EXPECT_DOUBLE_EQ(caps.front(), 40.0);
  EXPECT_DOUBLE_EQ(caps.back(), 100.0);
  EXPECT_DOUBLE_EQ(caps[1] - caps[0], 5.0);
}

TEST(PlatformTest, SettingsAscending) {
  for (PlatformId id : {PlatformId::kEmbedded, PlatformId::kCpu1, PlatformId::kCpu2,
                        PlatformId::kGpu}) {
    const auto caps = GetPlatform(id).PowerSettings();
    for (size_t i = 1; i < caps.size(); ++i) {
      EXPECT_GT(caps[i], caps[i - 1]);
    }
    EXPECT_EQ(GetPlatform(id).DefaultPowerIndex(), static_cast<int>(caps.size()) - 1);
  }
}

TEST(PlatformTest, GpuIsCalmestPlatform) {
  // Section 5.2: "The GPU experiences significantly lower dynamic fluctuation".
  const PlatformSpec& gpu = GetPlatform(PlatformId::kGpu);
  for (PlatformId id : {PlatformId::kEmbedded, PlatformId::kCpu1, PlatformId::kCpu2}) {
    const PlatformSpec& cpu = GetPlatform(id);
    EXPECT_LT(gpu.profile_noise_sigma, cpu.profile_noise_sigma);
    EXPECT_LT(gpu.drift_sigma, cpu.drift_sigma);
    EXPECT_LT(gpu.memory_contention_slowdown, cpu.memory_contention_slowdown);
  }
}

TEST(PlatformTest, MemoryContentionHarsherThanCompute) {
  for (PlatformId id : {PlatformId::kEmbedded, PlatformId::kCpu1, PlatformId::kCpu2,
                        PlatformId::kGpu}) {
    const PlatformSpec& p = GetPlatform(id);
    EXPECT_GT(p.memory_contention_slowdown, p.compute_contention_slowdown);
    EXPECT_GT(p.MeanContentionSlowdown(ContentionType::kMemory),
              p.MeanContentionSlowdown(ContentionType::kCompute));
    EXPECT_EQ(p.MeanContentionSlowdown(ContentionType::kNone), 1.0);
  }
}

}  // namespace
}  // namespace alert
