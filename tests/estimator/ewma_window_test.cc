#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/estimator/ewma.h"
#include "src/estimator/sliding_window.h"

namespace alert {
namespace {

// --- EWMA ---

TEST(EwmaTest, ConvergesToConstant) {
  EwmaEstimator e(0.2, 0.0);
  for (int i = 0; i < 100; ++i) {
    e.Update(3.0);
  }
  EXPECT_NEAR(e.mean(), 3.0, 1e-6);
  EXPECT_NEAR(e.variance(), 0.0, 1e-6);
}

TEST(EwmaTest, AlphaOneTracksExactly) {
  EwmaEstimator e(1.0, 0.0);
  e.Update(5.0);
  EXPECT_DOUBLE_EQ(e.mean(), 5.0);
  e.Update(-2.0);
  EXPECT_DOUBLE_EQ(e.mean(), -2.0);
}

TEST(EwmaTest, VarianceTracksNoiseScale) {
  Rng rng(3);
  EwmaEstimator e(0.1, 1.0);
  for (int i = 0; i < 5000; ++i) {
    e.Update(rng.Normal(1.0, 0.2));
  }
  EXPECT_NEAR(e.stddev(), 0.2, 0.06);
}

TEST(EwmaTest, SmallerAlphaSmootherMean) {
  Rng rng1(5);
  Rng rng2(5);
  EwmaEstimator fast(0.5, 1.0);
  EwmaEstimator slow(0.05, 1.0);
  double fast_wobble = 0.0;
  double slow_wobble = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x1 = rng1.Normal(1.0, 0.3);
    rng2.Normal(1.0, 0.3);  // keep streams aligned
    const double prev_fast = fast.mean();
    const double prev_slow = slow.mean();
    fast.Update(x1);
    slow.Update(x1);
    if (i > 100) {
      fast_wobble += std::abs(fast.mean() - prev_fast);
      slow_wobble += std::abs(slow.mean() - prev_slow);
    }
  }
  EXPECT_LT(slow_wobble, fast_wobble * 0.5);
}

TEST(EwmaTest, RejectsBadAlpha) {
  EXPECT_DEATH(EwmaEstimator(0.0), "alpha");
  EXPECT_DEATH(EwmaEstimator(1.5), "alpha");
}

// --- SlidingWindow ---

TEST(SlidingWindowTest, FillsThenWraps) {
  SlidingWindow w(3);
  w.Add(1.0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_FALSE(w.full());
  w.Add(2.0);
  w.Add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.Add(10.0);  // evicts 1.0
  EXPECT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
}

TEST(SlidingWindowTest, OldValuesFullyForgotten) {
  SlidingWindow w(4);
  for (double x : {100.0, 100.0, 100.0, 100.0}) {
    w.Add(x);
  }
  for (double x : {1.0, 1.0, 1.0, 1.0}) {
    w.Add(x);
  }
  EXPECT_DOUBLE_EQ(w.mean(), 1.0);
  EXPECT_DOUBLE_EQ(w.max(), 1.0);
}

TEST(SlidingWindowTest, VarianceOverWindow) {
  SlidingWindow w(4);
  for (double x : {2.0, 4.0, 4.0, 6.0}) {
    w.Add(x);
  }
  EXPECT_DOUBLE_EQ(w.mean(), 4.0);
  EXPECT_DOUBLE_EQ(w.variance(), 2.0);
}

TEST(SlidingWindowTest, PercentileMatchesSortedOrder) {
  SlidingWindow w(5);
  for (double x : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    w.Add(x);
  }
  EXPECT_DOUBLE_EQ(w.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(w.Percentile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(w.Percentile(1.0), 5.0);
}

TEST(SlidingWindowTest, TailEstimateUseCase) {
  // The soft-WCET use: p99-in-window of a noisy latency stream sits well above the
  // mean but below the global max of a heavy-tailed distribution.
  Rng rng(7);
  SlidingWindow w(200);
  for (int i = 0; i < 200; ++i) {
    w.Add(rng.LogNormal(0.0, 0.2));
  }
  EXPECT_GT(w.Percentile(0.99), w.mean());
  EXPECT_LE(w.Percentile(0.99), w.max());
}

TEST(SlidingWindowTest, RejectsZeroCapacity) {
  EXPECT_DEATH(SlidingWindow(0), "capacity");
}

}  // namespace
}  // namespace alert
