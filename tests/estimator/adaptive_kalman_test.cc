#include "src/estimator/adaptive_kalman.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alert {
namespace {

TEST(AdaptiveKalmanTest, InitialStateMatchesPaperConstants) {
  AdaptiveKalmanFilter f;
  EXPECT_DOUBLE_EQ(f.mean(), 1.0);
  EXPECT_DOUBLE_EQ(f.variance(), 0.1);
  EXPECT_DOUBLE_EQ(f.gain(), 0.5);
  EXPECT_DOUBLE_EQ(f.process_noise(), 0.1);
}

TEST(AdaptiveKalmanTest, TracksConstantRatio) {
  AdaptiveKalmanFilter f;
  for (int i = 0; i < 100; ++i) {
    f.Update(1.6);
  }
  EXPECT_NEAR(f.mean(), 1.6, 0.01);
}

TEST(AdaptiveKalmanTest, RespondsWithinAFewInputs) {
  // Section 3.6: "it requires at least one input to react to sudden changes".  With a
  // noisy (realistic) quiet history the gain stays alive and a level shift is absorbed
  // within a few observations.
  AdaptiveKalmanFilter f;
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    f.Update(rng.Normal(1.0, 0.05));
  }
  f.Update(1.8);
  f.Update(1.8);
  f.Update(1.8);
  EXPECT_GT(f.mean(), 1.5);
}

TEST(AdaptiveKalmanTest, NoiselessHistoryFreezesTheGain) {
  // A quirk of the published formulation: with *perfectly* constant observations the
  // adaptive Q decays to zero and the gain collapses — the filter becomes maximally
  // confident.  Real environments always carry noise, which keeps Q alive.
  AdaptiveKalmanFilter f;
  for (int i = 0; i < 200; ++i) {
    f.Update(1.0);
  }
  EXPECT_LT(f.gain(), 0.05);
}

TEST(AdaptiveKalmanTest, QuietEnvironmentShrinksVarianceBelowInitial) {
  AdaptiveKalmanFilter f;
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    f.Update(rng.Normal(1.0, 0.02));
  }
  EXPECT_LT(f.variance(), 0.01);
  EXPECT_LT(f.stddev(), 0.07);
}

TEST(AdaptiveKalmanTest, LevelShiftInflatesVarianceThenDecays) {
  AdaptiveKalmanFilter f;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    f.Update(rng.Normal(1.0, 0.02));
  }
  const double quiet_sigma = f.stddev();
  // Sudden contention: ratio jumps to 1.7.
  f.Update(rng.Normal(1.7, 0.02));
  f.Update(rng.Normal(1.7, 0.02));
  f.Update(rng.Normal(1.7, 0.02));
  const double shocked_sigma = f.stddev();
  EXPECT_GT(shocked_sigma, 2.0 * quiet_sigma);
  // Stability at the new level decays the variance again (forgetting factor).
  for (int i = 0; i < 100; ++i) {
    f.Update(rng.Normal(1.7, 0.02));
  }
  EXPECT_LT(f.stddev(), shocked_sigma * 0.5);
  EXPECT_NEAR(f.mean(), 1.7, 0.05);
}

TEST(AdaptiveKalmanTest, ProcessNoiseIsCappedAtQ0) {
  AdaptiveKalmanFilter f;
  // Huge innovations cannot push Q beyond Q(0) (the paper's "capped with Q(0)").
  for (double obs : {1.0, 5.0, 0.2, 8.0, 0.1}) {
    f.Update(obs);
    EXPECT_LE(f.process_noise(), 0.1 + 1e-12);
  }
}

TEST(AdaptiveKalmanTest, LiteralMaxVariantKeepsQAtFloor) {
  AdaptiveKalmanParams params;
  params.literal_max_variant = true;
  AdaptiveKalmanFilter f(params);
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    f.Update(rng.Normal(1.0, 0.02));
    EXPECT_GE(f.process_noise(), 0.1 - 1e-12);
  }
  // The floor keeps the variance permanently wide — the behaviour that contradicts
  // Fig. 11 and motivates the capped default.
  EXPECT_GT(f.stddev(), 0.3);
}

TEST(AdaptiveKalmanTest, PredictiveStddevIncludesMeasurementNoise) {
  AdaptiveKalmanFilter f;
  Rng rng(15);
  for (int i = 0; i < 200; ++i) {
    f.Update(rng.Normal(1.0, 0.02));
  }
  EXPECT_GT(f.predictive_stddev(), f.stddev());
}

TEST(AdaptiveKalmanTest, HigherQ0CapAllowsWiderVariance) {
  // Section 3.6: "Users can compensate for extremely aberrant latency distributions by
  // increasing the value of Q(0)".
  AdaptiveKalmanParams wide;
  wide.initial_process_noise = 0.4;
  AdaptiveKalmanFilter f_wide(wide);
  AdaptiveKalmanFilter f_default;
  Rng rng1(17);
  Rng rng2(17);
  for (int i = 0; i < 50; ++i) {
    // Violent oscillation.
    const double v = i % 2 == 0 ? 1.0 : 2.4;
    f_wide.Update(v + rng1.Normal(0.0, 0.01));
    f_default.Update(v + rng2.Normal(0.0, 0.01));
  }
  EXPECT_GT(f_wide.variance(), f_default.variance());
}

TEST(AdaptiveKalmanTest, NumUpdatesCounts) {
  AdaptiveKalmanFilter f;
  f.Update(1.0);
  f.Update(1.0);
  EXPECT_EQ(f.num_updates(), 2);
}

}  // namespace
}  // namespace alert
