#include "src/estimator/kalman.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alert {
namespace {

TEST(KalmanFilter1dTest, ConvergesToConstantSignal) {
  KalmanFilter1d f(0.0, 1.0, 1e-6, 0.01);
  for (int i = 0; i < 200; ++i) {
    f.Update(5.0);
  }
  EXPECT_NEAR(f.state(), 5.0, 1e-3);
  EXPECT_EQ(f.num_updates(), 200);
}

TEST(KalmanFilter1dTest, VarianceShrinksWithObservations) {
  KalmanFilter1d f(0.0, 1.0, 1e-6, 0.01);
  const double v0 = f.variance();
  f.Update(1.0);
  const double v1 = f.variance();
  f.Update(1.0);
  EXPECT_LT(v1, v0);
  EXPECT_LT(f.variance(), v1);
}

TEST(KalmanFilter1dTest, SmoothsNoise) {
  Rng rng(5);
  KalmanFilter1d f(1.0, 0.1, 1e-5, 0.04);
  double max_dev = 0.0;
  for (int i = 0; i < 500; ++i) {
    f.Update(rng.Normal(2.0, 0.2));
    if (i > 100) {
      max_dev = std::max(max_dev, std::abs(f.state() - 2.0));
    }
  }
  // The filtered state is far less noisy than the raw signal.
  EXPECT_LT(max_dev, 0.1);
}

TEST(KalmanFilter1dTest, TracksRandomWalk) {
  Rng rng(6);
  KalmanFilter1d f(0.0, 0.1, 0.01, 0.01);
  double truth = 0.0;
  double sum_err = 0.0;
  for (int i = 0; i < 1000; ++i) {
    truth += rng.Normal(0.0, 0.1);
    f.Update(truth + rng.Normal(0.0, 0.1));
    sum_err += std::abs(f.state() - truth);
  }
  EXPECT_LT(sum_err / 1000.0, 0.15);
}

TEST(KalmanFilter1dTest, PredictiveVarianceExceedsPosterior) {
  KalmanFilter1d f(0.0, 1.0, 0.01, 0.02);
  f.Update(1.0);
  EXPECT_GT(f.predictive_variance(), f.variance());
}

}  // namespace
}  // namespace alert
