#include "src/estimator/slowdown_estimator.h"

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(SlowdownEstimatorTest, RatioNormalization) {
  SlowdownEstimator e;
  // Completion at 0.15 s for a profile of 0.1 s: xi observation = 1.5.
  e.Observe(/*anchor_time=*/0.15, /*anchor_fraction=*/1.0, /*profile_latency=*/0.1,
            /*censored=*/false);
  ASSERT_EQ(e.history().size(), 1u);
  EXPECT_DOUBLE_EQ(e.history()[0], 1.5);
}

TEST(SlowdownEstimatorTest, StageAnchorsNormalizeByFraction) {
  SlowdownEstimator e;
  // Stage at 40% of the network completed at 0.06 s, full profile 0.1 s: xi = 1.5.
  e.Observe(0.06, 0.4, 0.1, false);
  EXPECT_DOUBLE_EQ(e.history()[0], 1.5);
}

TEST(SlowdownEstimatorTest, ConvergesAcrossHeterogeneousConfigs) {
  // The point of the global factor: observations from *different* configurations all
  // inform the same estimate.
  SlowdownEstimator e;
  for (int i = 0; i < 60; ++i) {
    const double profile = 0.05 + 0.01 * (i % 5);  // five different configs
    e.Observe(1.4 * profile, 1.0, profile, false);
  }
  EXPECT_NEAR(e.mean(), 1.4, 0.01);
}

TEST(SlowdownEstimatorTest, CountsCensoredObservations) {
  SlowdownEstimator e;
  e.Observe(0.1, 1.0, 0.1, true);
  e.Observe(0.1, 1.0, 0.1, false);
  e.Observe(0.1, 1.0, 0.1, true);
  EXPECT_EQ(e.num_censored(), 2);
  EXPECT_EQ(e.num_observations(), 3);
}

TEST(SlowdownEstimatorTest, VarianceIsPredictive) {
  SlowdownEstimator e;
  for (int i = 0; i < 100; ++i) {
    e.Observe(0.1, 1.0, 0.1, false);
  }
  EXPECT_DOUBLE_EQ(e.variance(), e.stddev() * e.stddev());
  EXPECT_GT(e.stddev(), 0.0);
}

TEST(SlowdownEstimatorTest, HistoryPreservesAllRatios) {
  SlowdownEstimator e;
  for (int i = 1; i <= 10; ++i) {
    e.Observe(0.1 * i, 1.0, 0.1, false);
  }
  ASSERT_EQ(e.history().size(), 10u);
  EXPECT_DOUBLE_EQ(e.history().back(), 10.0);
}

}  // namespace
}  // namespace alert
