#include "src/estimator/idle_power_filter.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alert {
namespace {

TEST(IdlePowerFilterTest, ConvergesToStableRatio) {
  IdlePowerFilter f;
  for (int i = 0; i < 100; ++i) {
    f.Update(/*idle_power=*/6.0, /*inference_power=*/30.0);
  }
  EXPECT_NEAR(f.ratio(), 0.2, 1e-3);
  EXPECT_NEAR(f.PredictIdlePower(30.0), 6.0, 0.05);
}

TEST(IdlePowerFilterTest, TracksContentionIdleInflation) {
  IdlePowerFilter f;
  for (int i = 0; i < 50; ++i) {
    f.Update(6.0, 30.0);
  }
  // Co-runner starts: idle power doubles.
  for (int i = 0; i < 50; ++i) {
    f.Update(12.0, 30.0);
  }
  EXPECT_NEAR(f.ratio(), 0.4, 0.01);
}

TEST(IdlePowerFilterTest, FirstUpdateMovesMostOfTheWay) {
  // With the paper's constants M(0)=0.01, S=1e-4, V=1e-3 the first gain is ~0.91.
  IdlePowerFilter f;
  f.Update(10.0, 20.0);  // observation 0.5, prior 0.25
  EXPECT_NEAR(f.gain(), 0.91, 0.02);
  EXPECT_NEAR(f.ratio(), 0.25 + f.gain() * 0.25, 1e-9);
}

TEST(IdlePowerFilterTest, SmoothsNoisyObservations) {
  IdlePowerFilter f;
  Rng rng(21);
  for (int i = 0; i < 500; ++i) {
    f.Update(rng.Normal(6.0, 0.5), 30.0);
  }
  EXPECT_NEAR(f.ratio(), 0.2, 0.02);
}

TEST(IdlePowerFilterTest, PredictionScalesWithInferencePower) {
  IdlePowerFilter f;
  for (int i = 0; i < 100; ++i) {
    f.Update(6.0, 30.0);
  }
  // phi is a ratio: a 15 W configuration is predicted to see ~3 W idle.
  EXPECT_NEAR(f.PredictIdlePower(15.0), 3.0, 0.1);
}

TEST(IdlePowerFilterTest, CountsUpdates) {
  IdlePowerFilter f;
  EXPECT_EQ(f.num_updates(), 0);
  f.Update(1.0, 2.0);
  EXPECT_EQ(f.num_updates(), 1);
}

}  // namespace
}  // namespace alert
