// Tests for the lock-free SPSC event ring behind alertd's instrumentation: FIFO
// ordering, wraparound, drop-counter accuracy, and a threaded smoke test that the
// TSan CI lane runs to certify the release/acquire pairing.
#include "src/daemon/event_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace alert::daemon {
namespace {

TEST(EventRingTest, PopOnEmptyFails) {
  EventRing<int> ring(8);
  int value = 0;
  EXPECT_FALSE(ring.TryPop(&value));
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_EQ(ring.popped(), 0u);
  EXPECT_TRUE(ring.empty());
}

TEST(EventRingTest, FifoOrderPreserved) {
  EventRing<int> ring(16);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ring.TryPush(i));
  }
  for (int i = 0; i < 10; ++i) {
    int value = -1;
    ASSERT_TRUE(ring.TryPop(&value));
    EXPECT_EQ(value, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(EventRingTest, CapacityRoundsUpToPowerOfTwo) {
  EventRing<int> ring(5);  // rounds to 8
  int pushed = 0;
  while (ring.TryPush(pushed)) {
    ++pushed;
  }
  EXPECT_EQ(pushed, 8);
  EXPECT_EQ(ring.dropped(), 1u);  // the failed push counted
}

TEST(EventRingTest, WraparoundKeepsOrderAcrossManyGenerations) {
  EventRing<int> ring(8);
  int next_push = 0;
  int next_pop = 0;
  // Interleave pushes and pops so the indices wrap the 8-slot buffer many times
  // while occupancy oscillates.
  for (int step = 0; step < 1000; ++step) {
    const int burst = 1 + (step % 5);
    for (int i = 0; i < burst; ++i) {
      if (ring.TryPush(next_push)) {
        ++next_push;
      }
    }
    const int drain = 1 + ((step * 3) % 5);
    for (int i = 0; i < drain; ++i) {
      int value = -1;
      if (ring.TryPop(&value)) {
        EXPECT_EQ(value, next_pop);
        ++next_pop;
      }
    }
  }
  while (true) {
    int value = -1;
    if (!ring.TryPop(&value)) {
      break;
    }
    EXPECT_EQ(value, next_pop);
    ++next_pop;
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(ring.pushed(), static_cast<uint64_t>(next_push));
  EXPECT_EQ(ring.popped(), static_cast<uint64_t>(next_pop));
}

TEST(EventRingTest, DropCounterCountsExactlyTheRefusedPushes) {
  EventRing<int> ring(4);
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (ring.TryPush(i)) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(ring.dropped(), 6u);
  // Draining frees slots; subsequent pushes succeed without touching the counter.
  int value = 0;
  ASSERT_TRUE(ring.TryPop(&value));
  EXPECT_TRUE(ring.TryPush(99));
  EXPECT_EQ(ring.dropped(), 6u);
}

// The TSan certification: one producer, one consumer, tight ring (drops exercised),
// every delivered value must arrive exactly once and in order.  Two independent
// rings run concurrently so the smoke test holds 4 threads live at once.
TEST(EventRingTest, SpscStressIsOrderedAndLossAccounted) {
  constexpr int kPerRing = 200000;
  constexpr int kRings = 2;
  std::vector<std::unique_ptr<EventRing<int>>> rings;
  for (int r = 0; r < kRings; ++r) {
    rings.push_back(std::make_unique<EventRing<int>>(64));
  }
  std::vector<std::thread> threads;
  std::vector<uint64_t> delivered(kRings, 0);
  std::vector<uint64_t> produced_accepted(kRings, 0);
  for (int r = 0; r < kRings; ++r) {
    EventRing<int>* ring = rings[static_cast<size_t>(r)].get();
    threads.emplace_back([ring, &produced_accepted, r] {
      uint64_t accepted = 0;
      for (int i = 0; i < kPerRing; ++i) {
        if (ring->TryPush(i)) {
          ++accepted;
        }
      }
      produced_accepted[static_cast<size_t>(r)] = accepted;
    });
    threads.emplace_back([ring, &delivered, r] {
      int last = -1;
      uint64_t count = 0;
      int idle = 0;
      // Run until the producer is done (pushed + dropped == kPerRing) and the ring
      // is drained.
      while (true) {
        int value = -1;
        if (ring->TryPop(&value)) {
          EXPECT_GT(value, last);  // strictly increasing: order survives drops
          last = value;
          ++count;
          idle = 0;
        } else if (ring->pushed() + ring->dropped() >=
                   static_cast<uint64_t>(kPerRing)) {
          if (++idle > 2) {
            break;  // producer finished and two extra sweeps saw nothing
          }
        }
      }
      delivered[static_cast<size_t>(r)] = count;
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (int r = 0; r < kRings; ++r) {
    EventRing<int>& ring = *rings[static_cast<size_t>(r)];
    EXPECT_EQ(delivered[static_cast<size_t>(r)], produced_accepted[static_cast<size_t>(r)]);
    EXPECT_EQ(ring.pushed(), produced_accepted[static_cast<size_t>(r)]);
    EXPECT_EQ(ring.pushed() + ring.dropped(), static_cast<uint64_t>(kPerRing));
    EXPECT_EQ(ring.popped(), delivered[static_cast<size_t>(r)]);
  }
}

}  // namespace
}  // namespace alert::daemon
