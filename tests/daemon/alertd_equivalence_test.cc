// The churn-equivalence lockdown: a live alertd (real TCP, real sessions, real
// reconnects) driven through a seeded churn script must produce a transcript
// byte-identical to the offline replay of the same script against a bare
// MultiJobCoordinator.  Any divergence — admission verdicts, goal reconfiguration,
// belief transplant across reconnects, budget changes, decision bytes — fails here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/daemon/alertd.h"
#include "src/daemon/churn_sim.h"

namespace alert::daemon {
namespace {

struct EquivalenceResult {
  AlertdStats stats;
  int num_reconnect_events = 0;
};

void RunEquivalence(ChurnScriptOptions options, EquivalenceResult* result) {
  const Watts budget = options.initial_budget;
  const ChurnScript script = MakeChurnScript(options);
  for (const ChurnEvent& event : script.events) {
    if (event.kind == ChurnEvent::Kind::kReconnect) {
      ++result->num_reconnect_events;
    }
  }

  AlertdOptions daemon_options;
  daemon_options.total_power_budget = budget;
  Alertd daemon(daemon_options);
  const serde::Status started = daemon.Start();
  ASSERT_TRUE(static_cast<bool>(started)) << started.message;

  ChurnDriverBackend driver("127.0.0.1", daemon.port(), /*read_timeout_ms=*/30000);
  const std::vector<std::string> live = RunChurnScript(script, driver);
  EXPECT_FALSE(driver.failed());
  daemon.Stop();
  daemon.Join();
  result->stats = daemon.stats();

  ChurnReplayBackend replay(script);
  const std::vector<std::string> offline = RunChurnScript(script, replay);

  ASSERT_EQ(live.size(), offline.size());
  for (size_t i = 0; i < live.size(); ++i) {
    ASSERT_EQ(live[i], offline[i]) << "transcript line " << i << " diverged";
  }
  // The script must have actually exercised the decision plane.
  EXPECT_GT(result->stats.rounds, 0u);
  EXPECT_GT(result->stats.decisions, 0u);
}

TEST(AlertdEquivalenceTest, ChurnK4MatchesOfflineReplayByteForByte) {
  ChurnScriptOptions options;
  options.seed = 3;
  options.max_tenants = 4;
  options.num_events = 72;
  options.initial_budget = 120.0;
  EquivalenceResult result;
  RunEquivalence(options, &result);
  // Reconnect coverage: beliefs crossed the wire and were restored bit-exactly.
  EXPECT_GT(result.num_reconnect_events, 0);
  EXPECT_GT(result.stats.restores, 0u);
}

TEST(AlertdEquivalenceTest, ChurnK32MatchesOfflineReplayByteForByte) {
  ChurnScriptOptions options;
  options.seed = 5;
  options.max_tenants = 32;
  options.num_events = 96;
  options.initial_budget = 600.0;
  EquivalenceResult result;
  RunEquivalence(options, &result);
  EXPECT_GT(result.stats.restores, 0u);
  EXPECT_GT(result.stats.admitted, 12u);
}

TEST(AlertdEquivalenceTest, ChurnK128MatchesOfflineReplayByteForByte) {
  ChurnScriptOptions options;
  options.seed = 9;
  options.max_tenants = 128;
  options.num_events = 220;
  // Arrival-heavy mix so membership actually climbs into the dozens; the budget is
  // tight enough at that scale that admission rejections join the equivalence.
  options.churn_prob = 0.5;
  options.arrive_weight = 0.6;
  options.depart_weight = 0.05;
  options.initial_budget = 1200.0;
  EquivalenceResult result;
  RunEquivalence(options, &result);
  EXPECT_GT(result.stats.admitted, 32u);
  EXPECT_GT(result.stats.restores, 0u);
}

}  // namespace
}  // namespace alert::daemon
