// Protocol robustness tests for the alertd control grammar: round-trips of every
// message type through the shared formatters/parsers, the session state machine's
// typed error replies, and a fuzz plane that feeds tens of thousands of garbage,
// truncated, mutated, and duplicate-key lines into AlertdCore — which must never
// crash, never abort, and stay fully serviceable afterwards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/daemon/alertd.h"

namespace alert::daemon {
namespace {

Goals AccuracyGoals(Seconds deadline) {
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = deadline;
  g.energy_budget = 1e9;
  return g;
}

class AlertdProtocolTest : public ::testing::Test {
 protected:
  AlertdProtocolTest() : core_(Options()) {}

  static AlertdOptions Options() {
    AlertdOptions options;
    options.platform = PlatformId::kCpu1;
    options.total_power_budget = 200.0;
    return options;
  }

  // Sends one line on `session`, returns every reply it provoked (all sessions).
  std::vector<Outgoing> Send(int session, const std::string& line) {
    std::vector<Outgoing> out;
    core_.HandleLine(session, line, &out);
    return out;
  }

  static std::string HelloLine(const std::string& name, const Goals& goals,
                               int task = 0, int dnn_set = 2) {
    serde::RecordWriter w("tenant-hello");
    w.Field("tenant", name);
    w.Field("task", task);
    w.Field("dnn_set", dnn_set);
    AppendGoalsFields(goals, &w);
    return w.line();
  }

  static std::string TickLine(const std::string& name, int input, double deadline) {
    serde::RecordWriter w("round-tick");
    w.Field("tenant", name);
    w.Field("input", input);
    w.Field("deadline", deadline);
    w.Field("period", deadline);
    return w.line();
  }

  // The one reply a line must have produced, as a parsed record.
  serde::RecordReader OnlyReply(const std::vector<Outgoing>& out) {
    EXPECT_EQ(out.size(), 1u);
    serde::RecordReader reader;
    EXPECT_TRUE(static_cast<bool>(
        serde::RecordReader::Parse(out.empty() ? "" : out[0].line, &reader)));
    return reader;
  }

  void ExpectError(const std::vector<Outgoing>& out, const std::string& reason) {
    serde::RecordReader reader = OnlyReply(out);
    EXPECT_EQ(reader.tag(), "error");
    std::string got;
    ASSERT_TRUE(static_cast<bool>(reader.Get("reason", &got)));
    EXPECT_EQ(got, reason);
  }

  AlertdCore core_;
};

// --- round-trips ------------------------------------------------------------------

TEST_F(AlertdProtocolTest, GoalsFieldsRoundTripExactly) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    Goals goals;
    goals.mode = static_cast<GoalMode>(rng.UniformInt(0, 2));
    goals.deadline = rng.Uniform(0.01, 2.0);
    goals.accuracy_goal = rng.Uniform(0.05, 1.0);
    goals.energy_budget = rng.Uniform(0.1, 1e9);
    goals.prob_threshold = rng.Bernoulli(0.5) ? rng.Uniform(0.0, 0.999) : 0.0;
    ASSERT_TRUE(goals.Valid());

    serde::RecordWriter w("probe");
    AppendGoalsFields(goals, &w);
    serde::RecordReader reader;
    ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(w.line(), &reader)));
    Goals parsed;
    ASSERT_TRUE(static_cast<bool>(ParseGoalsFields(&reader, &parsed))) << w.line();
    EXPECT_EQ(parsed.mode, goals.mode);
    EXPECT_EQ(parsed.deadline, goals.deadline);  // %.17g: exact
    EXPECT_EQ(parsed.accuracy_goal, goals.accuracy_goal);
    EXPECT_EQ(parsed.energy_budget, goals.energy_budget);
    EXPECT_EQ(parsed.prob_threshold, goals.prob_threshold);
  }
}

TEST_F(AlertdProtocolTest, BeliefLineFormatParseFormatIsIdentity) {
  StackCache stacks(PlatformId::kCpu1, kAlertdStackSeed);
  const Stack& stack = stacks.Get(TaskId::kImageClassification, DnnSetChoice::kBoth);
  const ConfigSpace& space = stack.space();
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    BeliefRecord record;
    record.belief.kalman.mean = rng.Uniform(0.5, 3.0);
    record.belief.kalman.variance = rng.Uniform(1e-4, 0.5);
    record.belief.kalman.gain = rng.Uniform(0.0, 1.0);
    record.belief.kalman.process_noise = rng.Uniform(1e-4, 0.5);
    record.belief.kalman.last_innovation = rng.Uniform(-0.5, 0.5);
    record.belief.kalman.num_updates = rng.UniformInt(0, 500);
    record.belief.xi_censored = rng.UniformInt(0, 20);
    record.belief.idle.ratio = rng.Uniform(0.0, 1.0);
    record.belief.idle.variance = rng.Uniform(1e-5, 0.1);
    record.belief.idle.gain = rng.Uniform(0.0, 1.0);
    record.belief.idle.num_updates = rng.UniformInt(0, 500);
    record.belief.energy_spent = rng.Uniform(0.0, 1e4);
    record.belief.inputs_observed = rng.UniformInt(0, 1000);
    record.has_decision = rng.Bernoulli(0.7);
    if (record.has_decision) {
      const int c = rng.UniformInt(0, space.num_candidates() - 1);
      const int p = rng.UniformInt(0, space.num_powers() - 1);
      record.decision.candidate = space.candidate(c);
      record.decision.power_index = p;
      record.decision.power_cap = space.cap(p);
    }

    const std::string line = FormatBeliefLine("belief", "t0", record);
    serde::RecordReader reader;
    ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(line, &reader)));
    EXPECT_EQ(reader.tag(), "belief");
    std::string tenant;
    ASSERT_TRUE(static_cast<bool>(reader.Get("tenant", &tenant)));
    BeliefRecord parsed;
    ASSERT_TRUE(static_cast<bool>(ParseBeliefFields(&reader, space, &parsed))) << line;
    EXPECT_EQ(FormatBeliefLine("belief", tenant, parsed), line);
    EXPECT_EQ(parsed.ticks(), record.ticks());
  }
}

TEST_F(AlertdProtocolTest, EventLinesAreParseableRecords) {
  for (int type = 0; type <= 9; ++type) {
    Event event;
    event.type = static_cast<Event::Type>(type);
    event.round = 3;
    event.tenant = 1;
    event.i0 = 4;
    event.i1 = -1;
    event.i2 = 8;
    event.d0 = 12.5;
    serde::RecordReader reader;
    EXPECT_TRUE(static_cast<bool>(
        serde::RecordReader::Parse(FormatEventLine(event), &reader)))
        << FormatEventLine(event);
  }
}

// --- the session state machine's typed errors -------------------------------------

TEST_F(AlertdProtocolTest, HappyPathSpeaksEveryVerb) {
  const Goals goals = AccuracyGoals(0.1);
  auto out = Send(1, HelloLine("t0", goals));
  EXPECT_EQ(OnlyReply(out).tag(), "ok");

  out = Send(1, TickLine("t0", 0, goals.deadline));
  ASSERT_EQ(out.size(), 2u);  // ack, then the decision (single tenant: round fires)
  serde::RecordReader ack;
  ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(out[0].line, &ack)));
  EXPECT_EQ(ack.tag(), "ok");
  serde::RecordReader decision;
  ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(out[1].line, &decision)));
  EXPECT_EQ(decision.tag(), "decision");

  serde::RecordWriter gw("goal-set");
  gw.Field("tenant", "t0");
  AppendGoalsFields(AccuracyGoals(0.15), &gw);
  EXPECT_EQ(OnlyReply(Send(1, gw.line())).tag(), "ok");

  serde::RecordWriter lw("limit-set");
  lw.Field("budget", 150.0);
  EXPECT_EQ(OnlyReply(Send(1, lw.line())).tag(), "ok");

  serde::RecordWriter sw("belief-snapshot");
  sw.Field("tenant", "t0");
  EXPECT_EQ(OnlyReply(Send(1, sw.line())).tag(), "belief");

  EXPECT_EQ(OnlyReply(Send(1, "stats")).tag(), "stats");

  serde::RecordWriter bw("tenant-bye");
  bw.Field("tenant", "t0");
  EXPECT_EQ(OnlyReply(Send(1, bw.line())).tag(), "ok");
  EXPECT_EQ(core_.num_tenants(), 0);
}

TEST_F(AlertdProtocolTest, StateMachineViolationsGetTypedErrors) {
  const Goals goals = AccuracyGoals(0.1);
  ASSERT_EQ(OnlyReply(Send(1, HelloLine("t0", goals))).tag(), "ok");

  ExpectError(Send(1, HelloLine("t0", goals)), "duplicate-tenant");
  ExpectError(Send(1, HelloLine("t1", goals, /*task=*/2)), "unknown-task");
  ExpectError(Send(1, HelloLine("t1", goals, /*task=*/0, /*dnn_set=*/7)),
              "unknown-dnn-set");
  ExpectError(Send(1, "made-up-verb x=1"), "unknown-verb");
  ExpectError(Send(1, TickLine("ghost", 0, 0.1)), "unknown-tenant");
  ExpectError(Send(2, TickLine("t0", 0, 0.1)), "not-owner");  // wrong session
  ExpectError(Send(1, TickLine("t0", 5, 0.1)), "tick-desync");
  ExpectError(Send(1, TickLine("t0", 0, -1.0)), "bad-deadline");

  // Restore is only legal before the first tick.
  ASSERT_EQ(Send(1, TickLine("t0", 0, 0.1)).size(), 2u);
  const std::string snapshot =
      Send(1, "belief-snapshot tenant=t0").front().line;
  ExpectError(Send(1, "belief-restore " + snapshot.substr(snapshot.find(' ') + 1)),
              "restore-after-tick");

  // Second tick without the measurement owed for the first decision.
  ExpectError(Send(1, TickLine("t0", 1, 0.1)), "missing-measurement");

  EXPECT_GT(core_.stats().protocol_errors, 0u);
  EXPECT_EQ(core_.stats().parse_errors, 0u);  // every line above parsed fine
}

TEST_F(AlertdProtocolTest, SessionCloseEvictsItsTenantsAndCompletesTheBarrier) {
  const Goals goals = AccuracyGoals(0.1);
  ASSERT_EQ(OnlyReply(Send(1, HelloLine("t0", goals))).tag(), "ok");
  ASSERT_EQ(OnlyReply(Send(1, HelloLine("t1", goals))).tag(), "ok");
  ASSERT_EQ(OnlyReply(Send(2, HelloLine("t2", goals))).tag(), "ok");
  ASSERT_EQ(core_.num_tenants(), 3);

  // Session 2's tenant ticks; the barrier still waits on session 1's two tenants.
  auto out = Send(2, TickLine("t2", 0, goals.deadline));
  ASSERT_EQ(out.size(), 1u);  // ack only, no round yet

  // Session 1 vanishes without tenant-bye: its tenants are evicted in one rebuild
  // and the departure completes the barrier — t2's decision must come out.
  std::vector<Outgoing> replies;
  core_.OnSessionClosed(1, &replies);
  EXPECT_EQ(core_.num_tenants(), 1);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].session, 2);
  serde::RecordReader decision;
  ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(replies[0].line, &decision)));
  EXPECT_EQ(decision.tag(), "decision");
  EXPECT_EQ(core_.stats().departed, 2u);
  EXPECT_EQ(core_.stats().rounds, 1u);
}

// --- fuzz -------------------------------------------------------------------------

// Mutates a valid wire line: truncation (torn line), random byte edits, token
// duplication (duplicate keys), token deletion, and splices of two lines.
std::string Mutate(Rng& rng, const std::string& base, const std::string& other) {
  std::string line = base;
  switch (rng.UniformInt(0, 4)) {
    case 0:  // torn line
      line = line.substr(0, static_cast<size_t>(
                                rng.UniformInt(0, static_cast<int>(line.size()))));
      break;
    case 1: {  // byte edit
      if (!line.empty()) {
        const int pos = rng.UniformInt(0, static_cast<int>(line.size()) - 1);
        line[static_cast<size_t>(pos)] = static_cast<char>(rng.UniformInt(32, 126));
      }
      break;
    }
    case 2: {  // duplicate a token (duplicate key)
      const size_t space = line.find(' ');
      if (space != std::string::npos) {
        const size_t next = line.find(' ', space + 1);
        const std::string token = line.substr(
            space, (next == std::string::npos ? line.size() : next) - space);
        line += token;
      }
      break;
    }
    case 3: {  // drop a token
      const size_t space = line.rfind(' ');
      if (space != std::string::npos) {
        line = line.substr(0, space);
      }
      break;
    }
    default:  // splice two lines at random offsets
      line = line.substr(0, static_cast<size_t>(rng.UniformInt(
                                0, static_cast<int>(line.size())))) +
             other.substr(static_cast<size_t>(
                 rng.UniformInt(0, static_cast<int>(other.size()))));
      break;
  }
  return line;
}

std::string GarbageLine(Rng& rng) {
  const int len = rng.UniformInt(0, 120);
  std::string line;
  line.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    // Any byte except '\n' (the framing layer strips newlines by construction).
    char c = static_cast<char>(rng.UniformInt(1, 255));
    if (c == '\n') {
      c = ' ';
    }
    line.push_back(c);
  }
  return line;
}

TEST_F(AlertdProtocolTest, TenThousandHostileLinesNeverCrashTheCore) {
  const Goals goals = AccuracyGoals(0.1);
  ASSERT_EQ(OnlyReply(Send(1, HelloLine("t0", goals))).tag(), "ok");

  // Seed corpus: one valid line of every verb (against live and ghost tenants).
  const std::vector<std::string> corpus = {
      HelloLine("t1", goals),
      HelloLine("t0", goals),
      TickLine("t0", 0, goals.deadline),
      TickLine("ghost", 3, -2.5),
      "goal-set tenant=t0 mode=1 deadline=0.1 accuracy_goal=0 energy_budget=1e9 "
      "prob_threshold=0",
      "limit-set budget=150",
      "limit-set budget=-1",
      "belief-snapshot tenant=t0",
      "belief-restore tenant=t0 kalman_mean=1 kalman_variance=-5",
      "tenant-bye tenant=t0",
      "stats",
      "round-tick tenant=t0 input=99999999999999999999 deadline=nan period=inf",
      "round-tick tenant=t0 input=0 deadline=0.1 period=0.1 m_latency=0.05",
  };
  Rng rng(17);
  int lines_sent = 0;
  for (int i = 0; i < 12000; ++i) {
    std::string line;
    if (rng.Bernoulli(0.4)) {
      line = GarbageLine(rng);
    } else {
      const std::string& a =
          corpus[static_cast<size_t>(rng.UniformInt(0, static_cast<int>(corpus.size()) - 1))];
      const std::string& b =
          corpus[static_cast<size_t>(rng.UniformInt(0, static_cast<int>(corpus.size()) - 1))];
      line = Mutate(rng, a, b);
    }
    // Sessions 1-3: garbage lands both on the tenant-owning session and others.
    std::vector<Outgoing> out;
    core_.HandleLine(rng.UniformInt(1, 3), line, &out);
    ++lines_sent;
    // Every reply must itself be a well-formed record.
    for (const Outgoing& reply : out) {
      serde::RecordReader reader;
      EXPECT_TRUE(static_cast<bool>(serde::RecordReader::Parse(reply.line, &reader)))
          << "unparseable reply '" << reply.line << "' to input '" << line << "'";
    }
  }
  ASSERT_GE(lines_sent, 10000);
  const AlertdStats stats = core_.stats();
  EXPECT_GT(stats.parse_errors, 0u);
  EXPECT_GT(stats.protocol_errors, 0u);

  // The core must still be fully serviceable.  Mutants may have admitted tenants
  // under arbitrary names or shrunk the budget, so recover deterministically first:
  // close the fuzz sessions (evicting every mutant tenant in one sweep each), then
  // restore a roomy budget.
  std::vector<Outgoing> drain;
  core_.OnSessionClosed(1, &drain);
  core_.OnSessionClosed(2, &drain);
  core_.OnSessionClosed(3, &drain);
  ASSERT_EQ(core_.num_tenants(), 0);
  EXPECT_EQ(OnlyReply(Send(9, "limit-set budget=500")).tag(), "ok");
  ASSERT_EQ(OnlyReply(Send(9, HelloLine("afterfuzz", goals))).tag(), "ok");
  auto out = Send(9, TickLine("afterfuzz", 0, goals.deadline));
  ASSERT_EQ(out.size(), 2u);  // sole tenant: ack then decision
  serde::RecordReader decision;
  ASSERT_TRUE(static_cast<bool>(serde::RecordReader::Parse(out[1].line, &decision)));
  EXPECT_EQ(decision.tag(), "decision");
  EXPECT_EQ(OnlyReply(Send(9, "stats")).tag(), "stats");
}

}  // namespace
}  // namespace alert::daemon
