#include "src/common/table.h"

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(TextTableTest, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlign) {
  TextTable t({"a", "b"});
  t.AddRow({"xxxxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.Render();
  // Every rendered line has the same length.
  size_t line_len = 0;
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t nl = out.find('\n', pos);
    const size_t len = nl - pos;
    if (line_len == 0) {
      line_len = len;
    }
    EXPECT_EQ(len, line_len);
    pos = nl + 1;
  }
}

TEST(TextTableTest, SeparatorAddsRule) {
  TextTable t({"a"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // header rule + top + bottom + separator = 4 rules
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = out.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatWithViolationsTest, SuperscriptOnlyWhenViolated) {
  EXPECT_EQ(FormatWithViolations(0.76, 2, 19), "0.76^19");
  EXPECT_EQ(FormatWithViolations(0.76, 2, 0), "0.76");
}

}  // namespace
}  // namespace alert
