#include "src/common/rng.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // Must not get stuck at zero.
  std::set<uint64_t> values;
  for (int i = 0; i < 16; ++i) {
    values.insert(rng.NextU64());
  }
  EXPECT_GT(values.size(), 10u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.5, 9.25);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 9.25);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int x = rng.UniformInt(2, 6);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 6);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, LogNormalIsExpOfNormal) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 0.5), 0.0);
  }
}

TEST(RngTest, LogNormalMedianNearExpMu) {
  Rng rng(17);
  std::vector<double> xs;
  for (int i = 0; i < 20001; ++i) {
    xs.push_back(rng.LogNormal(1.0, 0.3));
  }
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], std::exp(1.0), 0.08);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(31);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.NextU64() == b.NextU64() ? 1 : 0;
  }
  EXPECT_LE(equal, 1);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng p1(55);
  Rng p2(55);
  Rng a = p1.Fork(9);
  Rng b = p2.Fork(9);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

}  // namespace
}  // namespace alert
