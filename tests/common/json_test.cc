#include "src/common/json.h"

#include <string>

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").is_null());
  EXPECT_TRUE(JsonValue::Parse("true").bool_value());
  EXPECT_FALSE(JsonValue::Parse("false").bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-3.25e2").number_value(), -325.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"").string_value(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  const std::string doc = R"({
    "suite": "decision_engine",
    "context": {"simd_active": true, "backend": "avx2"},
    "cases": [{"name": "a", "ns_per_op": 12.5}, {"name": "b", "ns_per_op": 7}],
    "derived": {"speedup": 2.75}
  })";
  std::string error;
  const JsonValue v = JsonValue::Parse(doc, &error);
  ASSERT_FALSE(v.is_null()) << error;
  EXPECT_EQ(v.at("suite").string_value(), "decision_engine");
  EXPECT_TRUE(v.at("context").at("simd_active").bool_value());
  ASSERT_EQ(v.at("cases").items().size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("cases").items()[1].at("ns_per_op").number_value(), 7.0);
  EXPECT_DOUBLE_EQ(v.at("derived").at("speedup").number_value(), 2.75);
  EXPECT_EQ(v.Find("missing"), nullptr);
  EXPECT_TRUE(v.at("missing").is_null());
}

TEST(JsonTest, ParsesStringEscapes) {
  const JsonValue v = JsonValue::Parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(v.string_value(), "a\"b\\c\nd\teA");
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_TRUE(JsonValue::Parse("{", &error).is_null());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(JsonValue::Parse("[1, 2,]", &error).is_null());
  EXPECT_TRUE(JsonValue::Parse("{\"a\" 1}", &error).is_null());
  EXPECT_TRUE(JsonValue::Parse("\"unterminated", &error).is_null());
  EXPECT_TRUE(JsonValue::Parse("1 2", &error).is_null());
  EXPECT_TRUE(JsonValue::Parse("nul", &error).is_null());
}

TEST(JsonTest, NumberOrAndBoolOrFallBack) {
  const JsonValue v = JsonValue::Parse(R"({"s": "x", "n": 5})");
  EXPECT_DOUBLE_EQ(v.at("s").number_or(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(v.at("n").number_or(-1.0), 5.0);
  EXPECT_TRUE(v.at("s").bool_or(true));
  EXPECT_TRUE(v.at("missing").bool_or(true));
}

TEST(JsonTest, BuilderAndDumpRoundTrip) {
  JsonValue report = JsonValue::Object();
  report.Set("suite", JsonValue::String("s"));
  JsonValue derived = JsonValue::Object();
  derived.Set("speedup", JsonValue::Number(2.123456789012345));
  derived.Set("hit_rate", JsonValue::Number(0.5));
  report.Set("derived", derived);
  JsonValue cases = JsonValue::Array();
  cases.Append(JsonValue::Number(1.0)).Append(JsonValue::Bool(false));
  report.Set("cases", cases);

  for (const int indent : {0, 2}) {
    std::string error;
    const JsonValue parsed = JsonValue::Parse(report.Dump(indent), &error);
    ASSERT_FALSE(parsed.is_null()) << error;
    // Shortest-round-trip number formatting: values survive bit for bit.
    EXPECT_EQ(parsed.at("derived").at("speedup").number_value(),
              2.123456789012345);
    EXPECT_EQ(parsed.at("cases").items().size(), 2u);
    EXPECT_FALSE(parsed.at("cases").items()[1].bool_value());
  }
}

TEST(JsonTest, SetOverwritesExistingKeyPreservingOrder) {
  JsonValue v = JsonValue::Object();
  v.Set("a", JsonValue::Number(1.0));
  v.Set("b", JsonValue::Number(2.0));
  v.Set("a", JsonValue::Number(3.0));
  ASSERT_EQ(v.members().size(), 2u);
  EXPECT_EQ(v.members()[0].first, "a");
  EXPECT_DOUBLE_EQ(v.members()[0].second.number_value(), 3.0);
}

TEST(JsonTest, DumpEscapesControlCharacters) {
  JsonValue v = JsonValue::String(std::string("tab\there\x01"));
  const std::string dumped = v.Dump();
  EXPECT_NE(dumped.find("\\t"), std::string::npos);
  EXPECT_NE(dumped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(JsonValue::Parse(dumped).string_value(), v.string_value());
}

}  // namespace
}  // namespace alert
