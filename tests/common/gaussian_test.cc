#include "src/common/gaussian.h"

#include <cmath>

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(GaussianTest, StandardCdfKnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(-1.0), 0.15865525393145707, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(GaussianTest, PdfKnownValues) {
  EXPECT_NEAR(StandardNormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(StandardNormalPdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(GaussianTest, CdfWithMeanAndStddev) {
  EXPECT_NEAR(NormalCdf(5.0, 5.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(7.0, 5.0, 2.0), StandardNormalCdf(1.0), 1e-12);
}

TEST(GaussianTest, DegenerateCdfIsStepFunction) {
  EXPECT_EQ(NormalCdf(4.999, 5.0, 0.0), 0.0);
  EXPECT_EQ(NormalCdf(5.0, 5.0, 0.0), 1.0);
  EXPECT_EQ(NormalCdf(5.001, 5.0, 0.0), 1.0);
}

TEST(GaussianTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999}) {
    const double x = StandardNormalQuantile(p);
    EXPECT_NEAR(StandardNormalCdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(GaussianTest, QuantileKnownValues) {
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(StandardNormalQuantile(0.84134474606854293), 1.0, 1e-7);
}

TEST(GaussianTest, NormalQuantileScalesAndShifts) {
  EXPECT_NEAR(NormalQuantile(0.975, 10.0, 2.0), 10.0 + 2.0 * 1.959963984540054, 1e-6);
  EXPECT_EQ(NormalQuantile(0.3, 7.0, 0.0), 7.0);
}

TEST(GaussianTest, TruncatedMeanBelowIsBelowBothMeanAndBound) {
  const double m = TruncatedNormalMeanBelow(0.0, 1.0, 0.5);
  EXPECT_LT(m, 0.0);   // truncation pulls the mean down
  EXPECT_LT(m, 0.5);
}

TEST(GaussianTest, TruncatedMeanApproachesMeanForLooseBound) {
  EXPECT_NEAR(TruncatedNormalMeanBelow(2.0, 1.0, 100.0), 2.0, 1e-9);
}

TEST(GaussianTest, TruncatedMeanDegenerateSigma) {
  EXPECT_EQ(TruncatedNormalMeanBelow(2.0, 0.0, 3.0), 2.0);
}

TEST(GaussianTest, TruncatedMeanTightBoundApproachesBound) {
  // Essentially no mass below the bound: limit is the bound itself.
  EXPECT_NEAR(TruncatedNormalMeanBelow(0.0, 1.0, -40.0), -40.0, 1e-6);
}

TEST(FastGaussianTest, MemoizedCdfTracksExactCdf) {
  for (double x = -9.0; x <= 9.0; x += 0.0137) {
    EXPECT_NEAR(FastStandardNormalCdf(x), StandardNormalCdf(x), 1e-7) << "x " << x;
  }
  EXPECT_EQ(FastStandardNormalCdf(-8.5), 0.0);
  EXPECT_EQ(FastStandardNormalCdf(8.5), 1.0);
}

TEST(FastGaussianTest, GridEdgeDoesNotOverrunTheTable) {
  // The largest double below the grid bound makes (x + 8) * scale round up to the
  // grid end exactly; the interval index must clamp (regression: one-past-the-end
  // table read).
  const double edge = std::nextafter(8.0, 0.0);
  EXPECT_NEAR(FastStandardNormalCdf(edge), 1.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalPdf(edge), 0.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalCdf(-edge), 0.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalPdf(-edge), 0.0, 1e-7);
}

TEST(FastGaussianTest, MemoizedPdfTracksExactPdf) {
  for (double x = -9.0; x <= 9.0; x += 0.0137) {
    EXPECT_NEAR(FastStandardNormalPdf(x), StandardNormalPdf(x), 1e-7) << "x " << x;
  }
  EXPECT_EQ(FastStandardNormalPdf(-8.5), 0.0);
  EXPECT_EQ(FastStandardNormalPdf(8.5), 0.0);
}

// Property sweep: CDF is monotone and quantile is its inverse on a grid.
class GaussianPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GaussianPropertyTest, CdfMonotone) {
  const double sigma = GetParam();
  double prev = -1.0;
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    const double c = NormalCdf(x, 0.0, sigma);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_P(GaussianPropertyTest, QuantileRoundTrip) {
  const double sigma = GetParam();
  for (double p = 0.02; p < 1.0; p += 0.07) {
    const double x = NormalQuantile(p, 1.5, sigma);
    EXPECT_NEAR(NormalCdf(x, 1.5, sigma), p, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, GaussianPropertyTest,
                         ::testing::Values(0.05, 0.3, 1.0, 4.0));

}  // namespace
}  // namespace alert
