#include "src/common/gaussian.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(GaussianTest, StandardCdfKnownValues) {
  EXPECT_NEAR(StandardNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StandardNormalCdf(1.0), 0.8413447460685429, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(-1.0), 0.15865525393145707, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(StandardNormalCdf(3.0), 0.9986501019683699, 1e-9);
}

TEST(GaussianTest, PdfKnownValues) {
  EXPECT_NEAR(StandardNormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_NEAR(StandardNormalPdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(GaussianTest, CdfWithMeanAndStddev) {
  EXPECT_NEAR(NormalCdf(5.0, 5.0, 2.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(7.0, 5.0, 2.0), StandardNormalCdf(1.0), 1e-12);
}

TEST(GaussianTest, DegenerateCdfIsStepFunction) {
  EXPECT_EQ(NormalCdf(4.999, 5.0, 0.0), 0.0);
  EXPECT_EQ(NormalCdf(5.0, 5.0, 0.0), 1.0);
  EXPECT_EQ(NormalCdf(5.001, 5.0, 0.0), 1.0);
}

TEST(GaussianTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999}) {
    const double x = StandardNormalQuantile(p);
    EXPECT_NEAR(StandardNormalCdf(x), p, 1e-9) << "p=" << p;
  }
}

TEST(GaussianTest, QuantileKnownValues) {
  EXPECT_NEAR(StandardNormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(StandardNormalQuantile(0.975), 1.959963984540054, 1e-7);
  EXPECT_NEAR(StandardNormalQuantile(0.84134474606854293), 1.0, 1e-7);
}

TEST(GaussianTest, NormalQuantileScalesAndShifts) {
  EXPECT_NEAR(NormalQuantile(0.975, 10.0, 2.0), 10.0 + 2.0 * 1.959963984540054, 1e-6);
  EXPECT_EQ(NormalQuantile(0.3, 7.0, 0.0), 7.0);
}

TEST(GaussianTest, TruncatedMeanBelowIsBelowBothMeanAndBound) {
  const double m = TruncatedNormalMeanBelow(0.0, 1.0, 0.5);
  EXPECT_LT(m, 0.0);   // truncation pulls the mean down
  EXPECT_LT(m, 0.5);
}

TEST(GaussianTest, TruncatedMeanApproachesMeanForLooseBound) {
  EXPECT_NEAR(TruncatedNormalMeanBelow(2.0, 1.0, 100.0), 2.0, 1e-9);
}

TEST(GaussianTest, TruncatedMeanDegenerateSigma) {
  EXPECT_EQ(TruncatedNormalMeanBelow(2.0, 0.0, 3.0), 2.0);
}

TEST(GaussianTest, TruncatedMeanTightBoundApproachesBound) {
  // Essentially no mass below the bound: limit is the bound itself.
  EXPECT_NEAR(TruncatedNormalMeanBelow(0.0, 1.0, -40.0), -40.0, 1e-6);
}

TEST(FastGaussianTest, MemoizedCdfTracksExactCdf) {
  for (double x = -9.0; x <= 9.0; x += 0.0137) {
    EXPECT_NEAR(FastStandardNormalCdf(x), StandardNormalCdf(x), 1e-7) << "x " << x;
  }
  EXPECT_EQ(FastStandardNormalCdf(-8.5), 0.0);
  EXPECT_EQ(FastStandardNormalCdf(8.5), 1.0);
}

TEST(FastGaussianTest, GridEdgeDoesNotOverrunTheTable) {
  // The largest double below the grid bound makes (x + 8) * scale round up to the
  // grid end exactly; the interval index must clamp (regression: one-past-the-end
  // table read).
  const double edge = std::nextafter(8.0, 0.0);
  EXPECT_NEAR(FastStandardNormalCdf(edge), 1.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalPdf(edge), 0.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalCdf(-edge), 0.0, 1e-7);
  EXPECT_NEAR(FastStandardNormalPdf(-edge), 0.0, 1e-7);
}

TEST(FastGaussianTest, MemoizedPdfTracksExactPdf) {
  for (double x = -9.0; x <= 9.0; x += 0.0137) {
    EXPECT_NEAR(FastStandardNormalPdf(x), StandardNormalPdf(x), 1e-7) << "x " << x;
  }
  EXPECT_EQ(FastStandardNormalPdf(-8.5), 0.0);
  EXPECT_EQ(FastStandardNormalPdf(8.5), 0.0);
}

// Property sweep: CDF is monotone and quantile is its inverse on a grid.
class GaussianPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(GaussianPropertyTest, CdfMonotone) {
  const double sigma = GetParam();
  double prev = -1.0;
  for (double x = -6.0; x <= 6.0; x += 0.25) {
    const double c = NormalCdf(x, 0.0, sigma);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST_P(GaussianPropertyTest, QuantileRoundTrip) {
  const double sigma = GetParam();
  for (double p = 0.02; p < 1.0; p += 0.07) {
    const double x = NormalQuantile(p, 1.5, sigma);
    EXPECT_NEAR(NormalCdf(x, 1.5, sigma), p, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sigmas, GaussianPropertyTest,
                         ::testing::Values(0.05, 0.3, 1.0, 4.0));


TEST(GaussianBatchTest, CdfBatchBitIdenticalToScalar) {
  // The batch entry point (vector kernel when a backend is active, scalar loop
  // otherwise) must reproduce FastStandardNormalCdf bit for bit, including the
  // clamp boundaries at +/-8 and far-tail inputs beyond them.
  std::vector<double> xs;
  for (double x = -10.0; x <= 10.0; x += 0.0371) {
    xs.push_back(x);
  }
  xs.insert(xs.end(), {-8.0, 8.0, -7.9999999, 7.9999999, -8.0000001, 8.0000001,
                       0.0, -0.0, 1e-300, -1e-300, 123.0, -123.0});
  std::vector<double> batch(xs.size());
  FastStandardNormalCdfBatch(xs.data(), batch.data(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double scalar = FastStandardNormalCdf(xs[i]);
    EXPECT_EQ(std::memcmp(&scalar, &batch[i], sizeof(double)), 0)
        << "x=" << xs[i] << " scalar=" << scalar << " batch=" << batch[i];
  }
}

TEST(GaussianBatchTest, PdfBatchBitIdenticalToScalar) {
  std::vector<double> xs;
  for (double x = -10.0; x <= 10.0; x += 0.0413) {
    xs.push_back(x);
  }
  xs.insert(xs.end(), {-8.0, 8.0, -7.9999999, 7.9999999, 0.0, 55.5, -55.5});
  std::vector<double> batch(xs.size());
  FastStandardNormalPdfBatch(xs.data(), batch.data(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const double scalar = FastStandardNormalPdf(xs[i]);
    EXPECT_EQ(std::memcmp(&scalar, &batch[i], sizeof(double)), 0)
        << "x=" << xs[i] << " scalar=" << scalar << " batch=" << batch[i];
  }
}

TEST(GaussianBatchTest, BatchHandlesShortAndUnalignedLengths) {
  // Lengths below, at, and straddling the lane width exercise the scalar tail.
  for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{9}}) {
    std::vector<double> xs(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = -3.0 + 0.7 * static_cast<double>(i);
    }
    std::vector<double> batch(n, -1.0);
    FastStandardNormalCdfBatch(xs.data(), batch.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch[i], FastStandardNormalCdf(xs[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(GaussianBatchTest, TableViewMatchesScalarLookup) {
  const GaussianTableView view = GetGaussianTableView();
  ASSERT_NE(view.cdf, nullptr);
  ASSERT_NE(view.pdf, nullptr);
  EXPECT_GT(view.intervals, 0);
  EXPECT_EQ(view.z_max, 8.0);
  // Reconstruct the interpolation by hand from the view; must match the memoized
  // scalar exactly.
  const double x = 1.2345;
  const double pos = (x + view.z_max) * view.scale;
  const int i = std::min(static_cast<int>(pos), view.intervals - 1);
  const double frac = pos - static_cast<double>(i);
  const double lo = view.cdf[i];
  const double hi = view.cdf[i + 1];
  EXPECT_EQ(lo + frac * (hi - lo), FastStandardNormalCdf(x));
}

}  // namespace
}  // namespace alert
