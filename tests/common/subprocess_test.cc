// Contract tests for the line-oriented child-process primitive the dispatcher's
// subprocess/command transports sit on: spawn, bidirectional line I/O, timeouts,
// EOF-with-drained-buffer semantics, and zombie-free teardown.
#include "src/common/subprocess.h"

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <memory>
#include <string>

namespace alert::subprocess {
namespace {

TEST(SubprocessTest, EchoRoundTrip) {
  std::unique_ptr<Child> child;
  const serde::Status s = Child::SpawnShell("while read l; do echo \"got:$l\"; done", &child);
  ASSERT_TRUE(s.ok) << s.message;

  ASSERT_TRUE(child->WriteLine("hello").ok);
  ASSERT_TRUE(child->WriteLine("world").ok);
  std::string line;
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "got:hello");
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "got:world");

  child->CloseStdin();  // read loop sees EOF and exits
  EXPECT_EQ(child->ReadLine(5000, &line), ReadStatus::kClosed);
  const int status = child->Wait();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST(SubprocessTest, SpawnArgvRunsWithoutShellExpansion) {
  std::unique_ptr<Child> child;
  const serde::Status s = Child::SpawnArgv({"/bin/echo", "$HOME literal"}, &child);
  ASSERT_TRUE(s.ok) << s.message;
  std::string line;
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "$HOME literal");  // argv spawn must not expand shell syntax
  EXPECT_EQ(child->ReadLine(5000, &line), ReadStatus::kClosed);
}

TEST(SubprocessTest, ZeroTimeoutPollsWithoutBlocking) {
  std::unique_ptr<Child> child;
  ASSERT_TRUE(Child::SpawnShell("read l; echo done", &child).ok);
  std::string line;
  // Nothing written yet: a poll must come back immediately with kTimeout.
  EXPECT_EQ(child->ReadLine(0, &line), ReadStatus::kTimeout);
  ASSERT_TRUE(child->WriteLine("go").ok);
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "done");
}

TEST(SubprocessTest, BufferedLinesSurviveChildExit) {
  std::unique_ptr<Child> child;
  // The child writes two lines and exits immediately; both must still be readable
  // after the process is gone (the dispatcher merges a dead worker's last results).
  ASSERT_TRUE(Child::SpawnShell("echo one; echo two", &child).ok);
  std::string line;
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "one");
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "two");
  EXPECT_EQ(child->ReadLine(5000, &line), ReadStatus::kClosed);
}

TEST(SubprocessTest, FinalUnterminatedLineIsDelivered) {
  std::unique_ptr<Child> child;
  ASSERT_TRUE(Child::SpawnShell("printf 'partial'", &child).ok);
  std::string line;
  ASSERT_EQ(child->ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "partial");
  EXPECT_EQ(child->ReadLine(5000, &line), ReadStatus::kClosed);
}

TEST(SubprocessTest, MissingBinaryIsAnExitNotAHang) {
  std::unique_ptr<Child> child;
  // exec failure happens in the forked child, which exits 127; the parent sees a
  // closed stream, never a hang.
  ASSERT_TRUE(Child::SpawnArgv({"/nonexistent/alert-no-such-binary"}, &child).ok);
  std::string line;
  EXPECT_EQ(child->ReadLine(5000, &line), ReadStatus::kClosed);
  const int status = child->Wait();
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 127);
}

TEST(SubprocessTest, KillTerminatesAndWriteAfterDeathIsAStatusError) {
  std::unique_ptr<Child> child;
  ASSERT_TRUE(Child::SpawnShell("sleep 600", &child).ok);
  child->Kill();
  const int status = child->Wait();
  EXPECT_TRUE(WIFSIGNALED(status));
  // The pipe may take one write to observe EPIPE; either write must fail, and the
  // process (us) must survive it — SIGPIPE is ignored.
  serde::Status s = child->WriteLine("after death");
  if (s.ok) {
    s = child->WriteLine("after death 2");
  }
  EXPECT_FALSE(s.ok);
}

TEST(SubprocessTest, EmptyCommandsAreStatusErrors) {
  std::unique_ptr<Child> child;
  EXPECT_FALSE(Child::SpawnArgv({}, &child).ok);
  EXPECT_FALSE(Child::SpawnShell("", &child).ok);
}

}  // namespace
}  // namespace alert::subprocess
