// Property/fuzz tests for the src/common/serde record grammar: randomized records
// must round-trip exactly (including extreme doubles and very long lines), and
// grammar-breaking mutations — truncations that orphan a key, empty values,
// duplicated keys — must be rejected by the strict parser with a Status, never a
// crash.  Every test is seed-deterministic: fixed std::mt19937_64 seeds, no time,
// no addresses, no global state.
#include "src/common/serde.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace alert::serde {
namespace {

// One randomly generated field with its expected typed value.
struct FuzzField {
  enum class Kind { kString, kInt64, kUint64, kDouble, kBool };
  Kind kind = Kind::kString;
  std::string key;
  std::string string_value;
  int64_t int_value = 0;
  uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

std::string RandomToken(std::mt19937_64& rng, int min_len, int max_len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-/:";
  std::uniform_int_distribution<int> len(min_len, max_len);
  std::uniform_int_distribution<size_t> pick(0, sizeof(kAlphabet) - 2);
  std::string token;
  const int n = len(rng);
  token.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    token.push_back(kAlphabet[pick(rng)]);
  }
  return token;
}

// A random *finite* double drawn from raw bit patterns — covers denormals, huge and
// tiny magnitudes, and every exponent, not just "nice" values.
double RandomFiniteDouble(std::mt19937_64& rng) {
  for (;;) {
    const double value = std::bit_cast<double>(rng());
    if (std::isfinite(value)) {
      return value;
    }
  }
}

std::vector<FuzzField> RandomFields(std::mt19937_64& rng, int count) {
  std::vector<FuzzField> fields;
  for (int i = 0; i < count; ++i) {
    FuzzField field;
    // Unique keys (duplicates are a parse error by design): suffix with the index.
    field.key = RandomToken(rng, 1, 8) + std::to_string(i);
    switch (rng() % 5) {
      case 0:
        field.kind = FuzzField::Kind::kString;
        field.string_value = RandomToken(rng, 1, 24);
        break;
      case 1:
        field.kind = FuzzField::Kind::kInt64;
        field.int_value = static_cast<int64_t>(rng());
        break;
      case 2:
        field.kind = FuzzField::Kind::kUint64;
        field.uint_value = rng();
        break;
      case 3:
        field.kind = FuzzField::Kind::kDouble;
        field.double_value = RandomFiniteDouble(rng);
        break;
      case 4:
        field.kind = FuzzField::Kind::kBool;
        field.bool_value = (rng() & 1) != 0;
        break;
    }
    fields.push_back(std::move(field));
  }
  return fields;
}

std::string BuildLine(const std::string& tag, const std::vector<FuzzField>& fields) {
  RecordWriter w(tag);
  for (const FuzzField& field : fields) {
    switch (field.kind) {
      case FuzzField::Kind::kString:
        w.Field(field.key, field.string_value);
        break;
      case FuzzField::Kind::kInt64:
        w.Field(field.key, field.int_value);
        break;
      case FuzzField::Kind::kUint64:
        w.Field(field.key, field.uint_value);
        break;
      case FuzzField::Kind::kDouble:
        w.Field(field.key, field.double_value);
        break;
      case FuzzField::Kind::kBool:
        w.Field(field.key, field.bool_value);
        break;
    }
  }
  return w.line();
}

void ExpectRoundTrip(const std::string& tag, const std::vector<FuzzField>& fields,
                     const std::string& line) {
  RecordReader reader;
  ASSERT_TRUE(RecordReader::Parse(line, &reader).ok) << line;
  ASSERT_TRUE(reader.ExpectTag(tag).ok);
  for (const FuzzField& field : fields) {
    switch (field.kind) {
      case FuzzField::Kind::kString: {
        std::string value;
        ASSERT_TRUE(reader.Get(field.key, &value).ok) << field.key;
        EXPECT_EQ(value, field.string_value);
        break;
      }
      case FuzzField::Kind::kInt64: {
        int64_t value = 0;
        ASSERT_TRUE(reader.Get(field.key, &value).ok) << field.key;
        EXPECT_EQ(value, field.int_value);
        break;
      }
      case FuzzField::Kind::kUint64: {
        uint64_t value = 0;
        ASSERT_TRUE(reader.Get(field.key, &value).ok) << field.key;
        EXPECT_EQ(value, field.uint_value);
        break;
      }
      case FuzzField::Kind::kDouble: {
        double value = 0.0;
        ASSERT_TRUE(reader.Get(field.key, &value).ok) << field.key;
        // Exact bit equality (including the sign of zero): %.17g round-trips.
        EXPECT_EQ(std::bit_cast<uint64_t>(value),
                  std::bit_cast<uint64_t>(field.double_value))
            << field.key << " = " << FormatDouble(field.double_value);
        break;
      }
      case FuzzField::Kind::kBool: {
        bool value = false;
        ASSERT_TRUE(reader.Get(field.key, &value).ok) << field.key;
        EXPECT_EQ(value, field.bool_value);
        break;
      }
    }
  }
  EXPECT_TRUE(reader.ExpectAllConsumed().ok);
}

// --- round-trip properties ----------------------------------------------------------

TEST(SerdePropertyTest, RandomRecordsRoundTripExactly) {
  std::mt19937_64 rng(20260730);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::string tag = RandomToken(rng, 1, 10);
    const auto fields = RandomFields(rng, 1 + static_cast<int>(rng() % 12));
    ExpectRoundTrip(tag, fields, BuildLine(tag, fields));
  }
}

TEST(SerdePropertyTest, ExtremeDoublesRoundTripBitExactly) {
  std::mt19937_64 rng(7);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    const double value = RandomFiniteDouble(rng);
    double parsed = 0.0;
    const Status s = ParseDouble(FormatDouble(value), &parsed);
    ASSERT_TRUE(s.ok) << FormatDouble(value) << ": " << s.message;
    EXPECT_EQ(std::bit_cast<uint64_t>(parsed), std::bit_cast<uint64_t>(value))
        << FormatDouble(value);
  }
}

TEST(SerdePropertyTest, VeryLongLinesRoundTrip) {
  // Hundreds of fields and multi-kilobyte values — far beyond anything the sweep
  // pipeline writes, so real records sit comfortably inside tested territory.
  std::mt19937_64 rng(11);
  std::vector<FuzzField> fields;
  for (int i = 0; i < 400; ++i) {
    FuzzField field;
    field.key = "k" + std::to_string(i);
    field.kind = FuzzField::Kind::kUint64;
    field.uint_value = rng();
    fields.push_back(field);
  }
  FuzzField big;
  big.key = "blob";
  big.kind = FuzzField::Kind::kString;
  big.string_value = RandomToken(rng, 8000, 8000);
  fields.push_back(big);
  const std::string line = BuildLine("long", fields);
  EXPECT_GT(line.size(), 10000u);
  ExpectRoundTrip("long", fields, line);
}

TEST(SerdePropertyTest, DataLinesSurviveRandomBlankAndCommentInterleaving) {
  std::mt19937_64 rng(13);
  for (int iteration = 0; iteration < 100; ++iteration) {
    const int records = 1 + static_cast<int>(rng() % 8);
    std::vector<std::string> expected;
    std::string text;
    for (int i = 0; i < records; ++i) {
      switch (rng() % 3) {
        case 0:
          text += "\n";
          break;
        case 1:
          text += "# " + RandomToken(rng, 0, 12) + "\n";
          break;
        default:
          break;
      }
      expected.push_back(RandomToken(rng, 1, 6) + " v=" + std::to_string(i));
      text += expected.back() + (rng() % 2 == 0 ? "\r\n" : "\n");
    }
    const auto lines = DataLines(text);
    ASSERT_EQ(lines.size(), expected.size());
    for (size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(lines[i], expected[i]);
    }
  }
}

// --- mutation rejection -------------------------------------------------------------

TEST(SerdePropertyTest, TruncationsThatOrphanAKeyAreRejected) {
  std::mt19937_64 rng(17);
  int rejected_cuts = 0;
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::string tag = RandomToken(rng, 1, 6);
    const auto fields = RandomFields(rng, 2 + static_cast<int>(rng() % 6));
    const std::string line = BuildLine(tag, fields);
    // Cut everywhere inside the final "key=value" token: every such prefix leaves a
    // bare key fragment ("k", "key", "key=") that strict parsing must reject.  (A cut
    // right after the separating space leaves only trailing whitespace, which the
    // grammar tolerates, so the loop starts one character into the orphan key.)
    const size_t last_space = line.rfind(' ');
    ASSERT_NE(last_space, std::string::npos);
    const size_t last_eq = line.find('=', last_space);
    ASSERT_NE(last_eq, std::string::npos);
    for (size_t cut = last_space + 2; cut <= last_eq + 1; ++cut) {
      RecordReader reader;
      EXPECT_FALSE(RecordReader::Parse(line.substr(0, cut), &reader).ok)
          << "cut at " << cut << " of: " << line;
      ++rejected_cuts;
    }
  }
  EXPECT_GT(rejected_cuts, 200);
}

TEST(SerdePropertyTest, DuplicatedKeysAreRejectedWhereverTheyLand) {
  std::mt19937_64 rng(19);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::string tag = RandomToken(rng, 1, 6);
    const auto fields = RandomFields(rng, 1 + static_cast<int>(rng() % 8));
    const std::string line = BuildLine(tag, fields);
    // Re-append a copy of a random existing field's token.
    const FuzzField& victim = fields[rng() % fields.size()];
    const size_t key_pos = line.find(" " + victim.key + "=");
    ASSERT_NE(key_pos, std::string::npos);
    const size_t token_end = line.find(' ', key_pos + 1);
    const std::string token = line.substr(
        key_pos, (token_end == std::string::npos ? line.size() : token_end) - key_pos);
    RecordReader reader;
    EXPECT_FALSE(RecordReader::Parse(line + token, &reader).ok)
        << "duplicated " << victim.key << " in: " << line;
  }
}

TEST(SerdePropertyTest, EmptyValuesAndBareKeysAreRejected) {
  std::mt19937_64 rng(23);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::string tag = RandomToken(rng, 1, 6);
    const auto fields = RandomFields(rng, 1 + static_cast<int>(rng() % 4));
    const std::string line = BuildLine(tag, fields);
    RecordReader reader;
    // An empty value ("key=") and a bare key (no '=') anywhere in the record.
    EXPECT_FALSE(RecordReader::Parse(line + " extra=", &reader).ok) << line;
    EXPECT_FALSE(RecordReader::Parse(line + " extra", &reader).ok) << line;
    EXPECT_FALSE(RecordReader::Parse(line + " =value", &reader).ok) << line;
  }
}

TEST(SerdePropertyTest, NumericTokenMutationsNeverCrashAndGarbageIsRejected) {
  // Random garbage thrown at every typed parser: outcomes are Status, never aborts;
  // tokens with characters no number can contain must be errors.
  std::mt19937_64 rng(29);
  for (int iteration = 0; iteration < 500; ++iteration) {
    const std::string token = RandomToken(rng, 1, 12);
    double d = 0.0;
    int i = 0;
    int64_t i64 = 0;
    uint64_t u64 = 0;
    bool b = false;
    (void)ParseDouble(token, &d);
    (void)ParseInt(token, &i);
    (void)ParseInt64(token, &i64);
    (void)ParseUint64(token, &u64);
    (void)ParseBool(token, &b);
    if (token.find_first_of("_/:") != std::string::npos) {
      EXPECT_FALSE(ParseDouble(token, &d).ok) << token;
      EXPECT_FALSE(ParseInt64(token, &i64).ok) << token;
      EXPECT_FALSE(ParseUint64(token, &u64).ok) << token;
    }
  }
}

TEST(SerdePropertyTest, FingerprintSeparatesSingleCharacterMutations) {
  std::mt19937_64 rng(31);
  for (int iteration = 0; iteration < 200; ++iteration) {
    const std::string tag = RandomToken(rng, 1, 6);
    const auto fields = RandomFields(rng, 1 + static_cast<int>(rng() % 6));
    std::string line = BuildLine(tag, fields);
    const uint64_t fp = Fnv1a64(line);
    const size_t pos = rng() % line.size();
    const char original = line[pos];
    line[pos] = original == 'x' ? 'y' : 'x';
    if (line[pos] != original) {
      EXPECT_NE(Fnv1a64(line), fp) << line;
    }
  }
}

}  // namespace
}  // namespace alert::serde
