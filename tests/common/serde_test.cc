// Record-grammar tests for src/common/serde: exact round trips for every value type
// and strict, status-based (never crashing) rejection of malformed input.
#include "src/common/serde.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace alert::serde {
namespace {

TEST(SerdeDoubleTest, FormatRoundTripsExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0,
                           1.0 / 3.0,
                           6.02214076e23,
                           -2.2250738585072014e-308,  // smallest normal
                           5e-324,                    // smallest denormal
                           std::numeric_limits<double>::max(),
                           0.064 * 0.4,
                           123456.78901234567};
  for (const double v : values) {
    double parsed = 0.0;
    const Status s = ParseDouble(FormatDouble(v), &parsed);
    ASSERT_TRUE(s.ok) << s.message;
    EXPECT_EQ(std::signbit(parsed), std::signbit(v));
    EXPECT_EQ(parsed, v);
  }
}

TEST(SerdeDoubleTest, RejectsNonFiniteAndMalformed) {
  double out = 0.0;
  EXPECT_FALSE(ParseDouble("nan", &out).ok);
  EXPECT_FALSE(ParseDouble("inf", &out).ok);
  EXPECT_FALSE(ParseDouble("-inf", &out).ok);
  EXPECT_FALSE(ParseDouble("1e999", &out).ok);  // overflows to inf
  EXPECT_FALSE(ParseDouble("", &out).ok);
  EXPECT_FALSE(ParseDouble("1.5x", &out).ok);
  EXPECT_FALSE(ParseDouble("one", &out).ok);
}

TEST(SerdeIntTest, ParsesAndRangeChecks) {
  int out = 0;
  EXPECT_TRUE(ParseInt("-42", &out).ok);
  EXPECT_EQ(out, -42);
  EXPECT_FALSE(ParseInt("4e2", &out).ok);
  EXPECT_FALSE(ParseInt("42.0", &out).ok);
  EXPECT_FALSE(ParseInt("99999999999999", &out).ok);  // fits int64, not int

  int64_t wide = 0;
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &wide).ok);
  EXPECT_FALSE(ParseInt64("9223372036854775808", &wide).ok);

  uint64_t u = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &u).ok);
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &u).ok);
  EXPECT_FALSE(ParseUint64("-1", &u).ok);
}

TEST(SerdeBoolTest, OnlyZeroAndOne) {
  bool out = false;
  EXPECT_TRUE(ParseBool("1", &out).ok);
  EXPECT_TRUE(out);
  EXPECT_TRUE(ParseBool("0", &out).ok);
  EXPECT_FALSE(out);
  EXPECT_FALSE(ParseBool("true", &out).ok);
  EXPECT_FALSE(ParseBool("2", &out).ok);
}

TEST(SerdeRecordTest, WriterReaderRoundTrip) {
  const std::string line = RecordWriter("unit")
                               .Field("id", 7)
                               .Field("name", "alpha")
                               .Field("metric", 1.0 / 3.0)
                               .Field("seed", uint64_t{18446744073709551615ull})
                               .Field("flag", true)
                               .line();
  RecordReader reader;
  ASSERT_TRUE(RecordReader::Parse(line, &reader).ok);
  EXPECT_TRUE(reader.ExpectTag("unit").ok);
  EXPECT_FALSE(reader.ExpectTag("result").ok);

  int id = 0;
  std::string name;
  double metric = 0.0;
  uint64_t seed = 0;
  bool flag = false;
  EXPECT_TRUE(reader.Get("id", &id).ok);
  EXPECT_TRUE(reader.Get("name", &name).ok);
  EXPECT_TRUE(reader.Get("metric", &metric).ok);
  EXPECT_TRUE(reader.Get("seed", &seed).ok);
  EXPECT_TRUE(reader.Get("flag", &flag).ok);
  EXPECT_EQ(id, 7);
  EXPECT_EQ(name, "alpha");
  EXPECT_EQ(metric, 1.0 / 3.0);
  EXPECT_EQ(seed, 18446744073709551615ull);
  EXPECT_TRUE(flag);
  EXPECT_TRUE(reader.ExpectAllConsumed().ok);
}

TEST(SerdeRecordTest, MissingFieldNamesTheKey) {
  RecordReader reader;
  ASSERT_TRUE(RecordReader::Parse("unit id=1", &reader).ok);
  double metric = 0.0;
  const Status s = reader.Get("metric", &metric);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("metric"), std::string::npos);
}

TEST(SerdeRecordTest, UnknownFieldRejectedByExpectAllConsumed) {
  RecordReader reader;
  ASSERT_TRUE(RecordReader::Parse("unit id=1 bogus=3", &reader).ok);
  int id = 0;
  ASSERT_TRUE(reader.Get("id", &id).ok);
  const Status s = reader.ExpectAllConsumed();
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("bogus"), std::string::npos);
}

TEST(SerdeRecordTest, MalformedLinesAreErrorsNotCrashes) {
  RecordReader reader;
  EXPECT_FALSE(RecordReader::Parse("", &reader).ok);
  EXPECT_FALSE(RecordReader::Parse("   ", &reader).ok);
  EXPECT_FALSE(RecordReader::Parse("key=value", &reader).ok);  // tag missing
  EXPECT_FALSE(RecordReader::Parse("unit id", &reader).ok);    // bare token
  EXPECT_FALSE(RecordReader::Parse("unit id=", &reader).ok);   // empty value
  EXPECT_FALSE(RecordReader::Parse("unit =3", &reader).ok);    // empty key
  EXPECT_FALSE(RecordReader::Parse("unit id=1 id=2", &reader).ok);  // duplicate
}

TEST(SerdeRecordTest, DoubleReadOfAFieldFails) {
  RecordReader reader;
  ASSERT_TRUE(RecordReader::Parse("unit id=1", &reader).ok);
  int id = 0;
  EXPECT_TRUE(reader.Get("id", &id).ok);
  EXPECT_FALSE(reader.Get("id", &id).ok);
}

TEST(SerdeLinesTest, SkipsBlanksAndComments) {
  const auto lines = DataLines("a b=1\n\n# comment\n  \t\n c d=2 \r\n# x\n");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a b=1");
  EXPECT_EQ(lines[1], "c d=2");
}

TEST(SerdeHashTest, Fnv1a64KnownVectorsAndSensitivity) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_NE(Fnv1a64("unit id=1"), Fnv1a64("unit id=2"));
}

TEST(SerdeFileTest, ReadMissingFileIsStatusError) {
  std::string contents;
  const Status s = ReadFile("/nonexistent/definitely/missing.txt", &contents);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("missing.txt"), std::string::npos);
}

TEST(SerdeFileTest, WriteThenReadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/serde_file_test.txt";
  const std::string payload = "unit id=1\nresult unit=1 usable=0\n";
  ASSERT_TRUE(WriteFile(path, payload).ok);
  std::string back;
  ASSERT_TRUE(ReadFile(path, &back).ok);
  EXPECT_EQ(back, payload);
}

TEST(SerdeFileTest, WriteToUnwritablePathIsStatusError) {
  EXPECT_FALSE(WriteFile("/nonexistent/dir/out.txt", "x").ok);
}

}  // namespace
}  // namespace alert::serde
