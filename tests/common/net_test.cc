// LineChannel and localhost TCP plumbing, including the regression test for the
// dispatcher-hang class of bugs: a timed ReadLine must bound the WHOLE call even
// when signals interrupt the underlying poll every few milliseconds.  A deadline
// that is re-armed per poll iteration never expires under a signal storm — that is
// exactly how a heartbeat-signal-heavy worker once turned a 500 ms read into a
// stuck dispatcher — so the alarm harness here fails loudly if the contract
// regresses.
#include "src/common/net.h"

#include <gtest/gtest.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <string>
#include <thread>

namespace alert::net {
namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   start)
      .count();
}

TEST(ParseHostPortTest, SplitsAndValidates) {
  std::string host;
  int port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:8080", &host, &port).ok);
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);

  EXPECT_FALSE(ParseHostPort("127.0.0.1", &host, &port).ok);    // no colon
  EXPECT_FALSE(ParseHostPort(":8080", &host, &port).ok);        // empty host
  EXPECT_FALSE(ParseHostPort("localhost:", &host, &port).ok);   // empty port
  EXPECT_FALSE(ParseHostPort("localhost:x", &host, &port).ok);  // non-numeric
  EXPECT_FALSE(ParseHostPort("localhost:70000", &host, &port).ok);  // out of range
  EXPECT_FALSE(ParseHostPort("localhost:0", &host, &port).ok);
}

TEST(LineChannelTest, SplitsLinesAndDrainsTheBufferPastEof) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  {
    // Two complete lines, then a final unterminated fragment, then EOF.
    LineChannel writer(-1, fds[1], /*owns_fds=*/true);
    ASSERT_TRUE(writer.WriteLine("alpha").ok);
    ASSERT_TRUE(writer.WriteLine("beta").ok);
    ASSERT_EQ(write(fds[1], "tail", 4), 4);
  }  // writer closes fds[1]

  LineChannel reader(fds[0], -1, /*owns_fds=*/true);
  std::string line;
  EXPECT_EQ(reader.ReadLine(-1, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "alpha");
  EXPECT_EQ(reader.ReadLine(-1, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "beta");
  // The torn final line is still delivered...
  EXPECT_EQ(reader.ReadLine(-1, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "tail");
  // ...and only then does the channel report closed, idempotently.
  EXPECT_EQ(reader.ReadLine(-1, &line), ReadStatus::kClosed);
  EXPECT_EQ(reader.ReadLine(0, &line), ReadStatus::kClosed);
}

TEST(LineChannelTest, ZeroTimeoutPollsWithoutBlocking) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  LineChannel reader(fds[0], -1, /*owns_fds=*/true);
  LineChannel writer(-1, fds[1], /*owns_fds=*/true);

  std::string line;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(reader.ReadLine(0, &line), ReadStatus::kTimeout);
  EXPECT_LT(MsSince(start), 1000.0);  // a poll, not a block

  ASSERT_TRUE(writer.WriteLine("now").ok);
  EXPECT_EQ(reader.ReadLine(0, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "now");
}

TEST(LineChannelTest, WriteToAGonePeerIsAStatusNotACrash) {
  EnsureSigpipeIgnored();
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  close(fds[0]);  // the reader is gone
  LineChannel writer(-1, fds[1], /*owns_fds=*/true);
  const serde::Status s = writer.WriteLine("into the void");
  EXPECT_FALSE(s.ok);

  LineChannel closed(-1, -1, /*owns_fds=*/false);
  EXPECT_FALSE(closed.WriteLine("nowhere").ok);
}

// --- the EINTR/deadline regression harness -----------------------------------------

volatile sig_atomic_t g_alarms = 0;
void CountAlarm(int) { ++g_alarms; }

// Hammers the calling thread with SIGALRM every interval_ms (no SA_RESTART, so
// every poll/read returns EINTR) for the lifetime of the object.
class AlarmStorm {
 public:
  explicit AlarmStorm(int interval_ms) {
    g_alarms = 0;
    struct sigaction action = {};
    action.sa_handler = &CountAlarm;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGALRM, &action, &previous_);
    itimerval timer = {};
    timer.it_interval.tv_usec = interval_ms * 1000;
    timer.it_value.tv_usec = interval_ms * 1000;
    setitimer(ITIMER_REAL, &timer, nullptr);
  }
  ~AlarmStorm() {
    itimerval off = {};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &previous_, nullptr);
  }

 private:
  struct sigaction previous_;
};

TEST(LineChannelTest, TimedReadHoldsItsDeadlineThroughASignalStorm) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  LineChannel reader(fds[0], -1, /*owns_fds=*/true);
  LineChannel writer(-1, fds[1], /*owns_fds=*/true);
  (void)writer;  // held open: the read must time out, not see EOF

  constexpr int kTimeoutMs = 400;
  const AlarmStorm storm(/*interval_ms=*/20);
  std::string line;
  const auto start = std::chrono::steady_clock::now();
  const ReadStatus status = reader.ReadLine(kTimeoutMs, &line);
  const double elapsed = MsSince(start);

  EXPECT_EQ(status, ReadStatus::kTimeout);
  // The deadline bounds the whole call.  A per-iteration timeout that re-arms on
  // every EINTR would never expire under a 20 ms alarm interval — the old bug made
  // this read hang until the writer died.  Generous upper bound for noisy CI.
  EXPECT_GE(elapsed, kTimeoutMs - 50.0);
  EXPECT_LT(elapsed, 4.0 * kTimeoutMs);
  // Prove the storm actually interrupted the poll repeatedly.
  EXPECT_GE(g_alarms, 5);
}

TEST(LineChannelTest, SignalStormDoesNotCorruptDeliveredLines) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  LineChannel reader(fds[0], -1, /*owns_fds=*/true);

  const AlarmStorm storm(/*interval_ms=*/5);
  std::thread feeder([write_fd = fds[1]] {
    LineChannel writer(-1, write_fd, /*owns_fds=*/true);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(writer.WriteLine("line-" + std::to_string(i)).ok);
      if (i % 25 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
  });
  std::string line;
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(reader.ReadLine(5000, &line), ReadStatus::kLine) << "line " << i;
    EXPECT_EQ(line, "line-" + std::to_string(i));
  }
  feeder.join();
  EXPECT_EQ(reader.ReadLine(-1, &line), ReadStatus::kClosed);
}

// --- localhost TCP -----------------------------------------------------------------

TEST(TcpTest, ListenConnectAcceptRoundTripsBothDirections) {
  int listen_fd = -1;
  int port = 0;
  ASSERT_TRUE(ListenLocalhost(&listen_fd, &port).ok);
  ASSERT_GT(port, 0);

  int client_fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", port, &client_fd).ok);
  int server_fd = -1;
  ASSERT_TRUE(AcceptWithTimeout(listen_fd, 5000, &server_fd).ok);
  close(listen_fd);

  LineChannel client(client_fd, client_fd, /*owns_fds=*/true);
  LineChannel server(server_fd, server_fd, /*owns_fds=*/true);
  std::string line;
  ASSERT_TRUE(client.WriteLine("ping").ok);
  ASSERT_EQ(server.ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "ping");
  ASSERT_TRUE(server.WriteLine("pong").ok);
  ASSERT_EQ(client.ReadLine(5000, &line), ReadStatus::kLine);
  EXPECT_EQ(line, "pong");

  // Half-close: the server sees EOF but its write side still works until closed.
  client.CloseWrite();
  EXPECT_EQ(server.ReadLine(5000, &line), ReadStatus::kClosed);
}

TEST(TcpTest, AcceptTimesOutWhenNobodyConnects) {
  int listen_fd = -1;
  int port = 0;
  ASSERT_TRUE(ListenLocalhost(&listen_fd, &port).ok);
  int conn_fd = -1;
  const auto start = std::chrono::steady_clock::now();
  const serde::Status s = AcceptWithTimeout(listen_fd, 100, &conn_fd);
  EXPECT_FALSE(s.ok);
  EXPECT_LT(MsSince(start), 5000.0);
  close(listen_fd);
}

TEST(TcpTest, ConnectToAClosedPortFails) {
  int listen_fd = -1;
  int port = 0;
  ASSERT_TRUE(ListenLocalhost(&listen_fd, &port).ok);
  close(listen_fd);  // nobody listening on `port` anymore
  int conn_fd = -1;
  EXPECT_FALSE(ConnectTcp("127.0.0.1", port, &conn_fd).ok);
}

}  // namespace
}  // namespace alert::net
