#include "src/common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(RunningStatTest, Empty) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(PercentileTest, MedianOfOddCount) {
  std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 3.0);
}

TEST(PercentileTest, Extremes) {
  std::vector<double> v = {5.0, 1.0, 3.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 9.0);
}

TEST(PercentileTest, LinearInterpolation) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.75), 7.5);
}

TEST(PercentileTest, SingleElement) {
  std::vector<double> v = {4.2};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.9), 4.2);
}

TEST(BoxplotTest, OrderingInvariant) {
  std::vector<double> v;
  for (int i = 100; i >= 1; --i) {
    v.push_back(static_cast<double>(i));
  }
  const BoxplotStats b = ComputeBoxplot(v);
  EXPECT_LE(b.min, b.p10);
  EXPECT_LE(b.p10, b.p25);
  EXPECT_LE(b.p25, b.median);
  EXPECT_LE(b.median, b.p75);
  EXPECT_LE(b.p75, b.p90);
  EXPECT_LE(b.p90, b.max);
  EXPECT_EQ(b.count, 100u);
  EXPECT_NEAR(b.mean, 50.5, 1e-12);
  EXPECT_NEAR(b.median, 50.5, 1e-12);
}

TEST(HarmonicMeanTest, KnownValue) {
  std::vector<double> v = {1.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(HarmonicMean(v), 3.0 / (1.0 + 0.25 + 0.25));
}

TEST(HarmonicMeanTest, ConstantInput) {
  std::vector<double> v = {2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(HarmonicMean(v), 2.5);
}

TEST(HarmonicMeanTest, DominatedBySmallValues) {
  std::vector<double> v = {0.1, 100.0};
  EXPECT_LT(HarmonicMean(v), 0.2);
}

TEST(MeanTest, EmptyIsZero) {
  std::vector<double> v;
  EXPECT_EQ(Mean(v), 0.0);
}

TEST(MeanTest, Basic) {
  std::vector<double> v = {1.0, 2.0, 6.0};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);    // bin 0
  h.Add(9.99);   // bin 9
  h.Add(-5.0);   // clamped to bin 0
  h.Add(50.0);   // clamped to bin 9
  h.Add(5.0);    // bin 5
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.4);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(1.0, 3.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 2.25);
}

TEST(HistogramTest, EmptyFractionIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_EQ(h.Fraction(0), 0.0);
}

}  // namespace
}  // namespace alert
