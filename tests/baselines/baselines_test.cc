#include <gtest/gtest.h>

#include "src/baselines/app_only.h"
#include "src/baselines/no_coord.h"
#include "src/baselines/oracle.h"
#include "src/baselines/sys_only.h"
#include "src/dnn/zoo.h"
#include "src/sim/platform.h"

namespace alert {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest()
      : models_(BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth)),
        sim_(GetPlatform(PlatformId::kCpu1), models_), space_(sim_) {
    contexts_.resize(16);  // quiet contexts
  }

  Goals MinEnergyGoals(Seconds deadline, double accuracy) const {
    Goals g;
    g.mode = GoalMode::kMinimizeEnergy;
    g.deadline = deadline;
    g.accuracy_goal = accuracy;
    return g;
  }

  InferenceRequest Request(int n, Seconds deadline) const {
    InferenceRequest r;
    r.input_index = n;
    r.deadline = deadline;
    r.period = deadline;
    return r;
  }

  std::vector<DnnModel> models_;
  PlatformSimulator sim_;
  ConfigSpace space_;
  std::vector<ExecutionContext> contexts_;
};

// --- App-only ---

TEST_F(BaselinesTest, AppOnlyAlwaysRunsAnytimeAtDefaultPower) {
  AppOnlyScheduler s(space_);
  for (int n = 0; n < 5; ++n) {
    const auto d = s.Decide(Request(n, 0.05));
    EXPECT_TRUE(space_.model(d.candidate.model_index).is_anytime());
    EXPECT_EQ(d.candidate.stage_limit,
              static_cast<int>(
                  space_.model(d.candidate.model_index).anytime_stages.size()) -
                  1);
    EXPECT_EQ(d.power_index, space_.default_power_index());
  }
}

TEST_F(BaselinesTest, AppOnlyRequiresAnytimeCandidate) {
  auto trad =
      BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kTraditionalOnly);
  PlatformSimulator sim(GetPlatform(PlatformId::kCpu1), trad);
  ConfigSpace space(sim);
  EXPECT_DEATH(AppOnlyScheduler{space}, "anytime");
}

// --- Sys-only ---

TEST_F(BaselinesTest, SysOnlyFixesFastestTraditionalModel) {
  SysOnlyScheduler s(space_, MinEnergyGoals(0.08, 0.93));
  const auto d = s.Decide(Request(0, 0.08));
  EXPECT_EQ(d.candidate.model_index, space_.FastestTraditionalModel());
  // The accuracy goal is ignored: the fixed fast model sits below 0.93.
  EXPECT_LT(space_.CandidateAccuracy(d.candidate), 0.93);
}

TEST_F(BaselinesTest, SysOnlyRaisesPowerUnderSlowdown) {
  SysOnlyScheduler s(space_, MinEnergyGoals(0.02, 0.8));
  const auto calm = s.Decide(Request(0, 0.02));
  // Feed observations showing a 2x slowdown.
  for (int i = 0; i < 10; ++i) {
    const auto d = s.Decide(Request(i, 0.02));
    Measurement m;
    m.xi_anchor_time =
        2.0 * space_.ProfileLatency(d.candidate.model_index, d.power_index);
    m.xi_anchor_fraction = 1.0;
    m.latency = m.xi_anchor_time;
    m.period = m.latency;
    m.inference_power = 20.0;
    m.idle_power = 6.0;
    s.Observe(d, m);
  }
  const auto stressed = s.Decide(Request(11, 0.02));
  EXPECT_GT(stressed.power_cap, calm.power_cap);
}

TEST_F(BaselinesTest, SysOnlyPicksLowEnergyCapWhenDeadlineLoose) {
  SysOnlyScheduler s(space_, MinEnergyGoals(1.0, 0.8));
  const auto d = s.Decide(Request(0, 1.0));
  // With a loose deadline, the minimum-energy cap is at or near the bottom.
  EXPECT_LE(d.power_cap, space_.cap(2));
}

// --- No-coord ---

TEST_F(BaselinesTest, NoCoordUsesAnytimeWithStageAdaptation) {
  NoCoordScheduler s(space_, MinEnergyGoals(0.05, 0.9));
  const auto d = s.Decide(Request(0, 0.05));
  EXPECT_TRUE(space_.model(d.candidate.model_index).is_anytime());
}

TEST_F(BaselinesTest, NoCoordAppSideCutsStagesUnderSlowdown) {
  NoCoordScheduler s(space_, MinEnergyGoals(0.05, 0.9));
  const auto calm = s.Decide(Request(0, 0.05));
  for (int i = 0; i < 10; ++i) {
    const auto d = s.Decide(Request(i, 0.05));
    Measurement m;
    const DnnModel& model = space_.model(d.candidate.model_index);
    const double frac =
        model.anytime_stages[static_cast<size_t>(std::max(d.candidate.stage_limit, 0))]
            .latency_fraction;
    m.xi_anchor_time =
        2.5 * frac * space_.ProfileLatency(d.candidate.model_index, d.power_index);
    m.xi_anchor_fraction = frac;
    m.latency = m.xi_anchor_time;
    m.period = m.latency;
    m.inference_power = 20.0;
    m.idle_power = 6.0;
    s.Observe(d, m);
  }
  const auto stressed = s.Decide(Request(11, 0.05));
  EXPECT_LT(stressed.candidate.stage_limit, calm.candidate.stage_limit);
}

// --- Oracle ---

TEST_F(BaselinesTest, OracleMeetsConstraintsWithMinimalEnergy) {
  const Goals goals = MinEnergyGoals(0.08, 0.92);
  OracleScheduler oracle(space_, goals, contexts_);
  const auto d = oracle.Decide(Request(0, 0.08));
  const Measurement m = sim_.Execute(d.ToExecRequest(Request(0, 0.08)), contexts_[0]);
  EXPECT_TRUE(m.deadline_met);
  EXPECT_GE(m.accuracy, 0.92);

  // No other feasible configuration is cheaper — exhaustive check.
  for (int ci = 0; ci < space_.num_candidates(); ++ci) {
    for (int pi = 0; pi < space_.num_powers(); ++pi) {
      SchedulingDecision alt;
      alt.candidate = space_.candidate(ci);
      alt.power_index = pi;
      alt.power_cap = space_.cap(pi);
      const Measurement am = sim_.Execute(alt.ToExecRequest(Request(0, 0.08)), contexts_[0]);
      if (am.deadline_met && am.accuracy >= 0.92) {
        EXPECT_GE(am.energy, m.energy - 1e-12);
      }
    }
  }
}

TEST_F(BaselinesTest, OracleFallsBackGracefullyWhenInfeasible) {
  const Goals goals = MinEnergyGoals(0.0005, 0.99);  // impossible deadline + accuracy
  OracleScheduler oracle(space_, goals, contexts_);
  const auto d = oracle.Decide(Request(0, 0.0005));
  // Should still return something sane.
  EXPECT_GE(d.candidate.model_index, 0);
  EXPECT_LT(d.candidate.model_index, space_.num_models());
}

TEST_F(BaselinesTest, OracleBanksEnergyBudgetAcrossInputs) {
  Goals goals;
  goals.mode = GoalMode::kMaximizeAccuracy;
  goals.deadline = 0.08;
  goals.energy_budget = 1.3;
  OracleScheduler oracle(space_, goals, contexts_);
  // First input: spend below budget.
  const auto d0 = oracle.Decide(Request(0, 0.08));
  Measurement m0 = sim_.Execute(d0.ToExecRequest(Request(0, 0.08)), contexts_[0]);
  oracle.Observe(d0, m0);
  // Report an artificially cheap measurement to create surplus.
  Measurement cheap = m0;
  cheap.energy = 0.1;
  oracle.Observe(d0, cheap);
  // With banked surplus the oracle can afford configurations above the per-input
  // budget; its pick should never be worse than without banking.
  const auto d2 = oracle.Decide(Request(2, 0.08));
  const Measurement m2 = sim_.Execute(d2.ToExecRequest(Request(2, 0.08)), contexts_[2]);
  EXPECT_GE(m2.accuracy, 0.9);
}

TEST_F(BaselinesTest, OracleMaximizesAccuracyUnderBudget) {
  Goals goals;
  goals.mode = GoalMode::kMaximizeAccuracy;
  goals.deadline = 0.08;
  goals.energy_budget = 3.5;  // generous
  OracleScheduler oracle(space_, goals, contexts_);
  const auto d = oracle.Decide(Request(0, 0.08));
  const Measurement m = sim_.Execute(d.ToExecRequest(Request(0, 0.08)), contexts_[0]);
  // With a generous budget the oracle should reach the top of the accuracy range.
  EXPECT_GE(m.accuracy, 0.945);
}

}  // namespace
}  // namespace alert
