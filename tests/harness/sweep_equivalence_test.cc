// Shard-equivalence: running a plan as K shards (through the full serialize -> parse
// results pipeline) and merging must reproduce the monolithic sweep's aggregate CSV
// byte for byte, for every K and both partition strategies.  This is the contract that
// makes multi-process / multi-machine sweeps trustworthy.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/harness/sweep_io.h"
#include "src/harness/sweep_plan.h"
#include "src/harness/sweep_runner.h"

namespace alert {
namespace {

// Small but representative: two schemes, two seeds, six settings including the 0.4x
// deadline column (statically infeasible -> exercises the skip/drop path).
SweepSpec ToySpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kSysOnly};
  spec.seeds = {1, 2};
  spec.num_inputs = 40;
  spec.grid_indices = {0, 7, 14, 21, 28, 35};
  return spec;
}

class SweepEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    plan_ = new SweepPlan(BuildSweepPlan(ToySpec()));
    monolithic_cells_ = new std::vector<CellResult>(RunSweep(*plan_));
    monolithic_csv_ =
        new std::string(SweepAggregateCsv(*plan_, *monolithic_cells_));
  }
  static void TearDownTestSuite() {
    delete plan_;
    delete monolithic_cells_;
    delete monolithic_csv_;
    plan_ = nullptr;
    monolithic_cells_ = nullptr;
    monolithic_csv_ = nullptr;
  }

  // Runs each shard separately, round-trips its results through the text format (as
  // the sweep_shard CLI would), then merges — the library-level replica of the
  // sweep_shard | sweep_merge pipeline.
  static std::string RunShardedCsv(int num_shards, ShardStrategy strategy) {
    const uint64_t fingerprint = PlanFingerprint(*plan_);
    std::vector<SweepUnitResult> merged_results;
    const auto shards = PartitionPlan(*plan_, num_shards, strategy);
    for (size_t i = 0; i < shards.size(); ++i) {
      ShardResults shard;
      shard.plan_fingerprint = fingerprint;
      shard.num_shards = num_shards;
      shard.shard_index = static_cast<int>(i);
      shard.strategy = strategy;
      shard.results = RunSweepUnits(*plan_, shards[i]);

      ShardResults parsed;
      const serde::Status s =
          ParseShardResults(SerializeShardResults(shard), &parsed);
      EXPECT_TRUE(s.ok) << s.message;
      EXPECT_EQ(parsed, shard);
      merged_results.insert(merged_results.end(), parsed.results.begin(),
                            parsed.results.end());
    }
    std::vector<CellResult> cells;
    const serde::Status merged = MergeSweepResults(*plan_, merged_results, &cells);
    EXPECT_TRUE(merged.ok) << merged.message;
    return SweepAggregateCsv(*plan_, cells);
  }

  static SweepPlan* plan_;
  static std::vector<CellResult>* monolithic_cells_;
  static std::string* monolithic_csv_;
};

SweepPlan* SweepEquivalenceTest::plan_ = nullptr;
std::vector<CellResult>* SweepEquivalenceTest::monolithic_cells_ = nullptr;
std::string* SweepEquivalenceTest::monolithic_csv_ = nullptr;

TEST_F(SweepEquivalenceTest, MonolithicSweepIsCoherent) {
  ASSERT_EQ(monolithic_cells_->size(), 2u);  // one cell x two seeds
  for (const CellResult& cell : *monolithic_cells_) {
    EXPECT_EQ(cell.total_settings, 6);
    ASSERT_EQ(cell.schemes.size(), 2u);
    for (const SchemeCellStats& stats : cell.schemes) {
      EXPECT_EQ(stats.usable_settings + cell.skipped_settings, 6);
    }
  }
  // The CSV carries one row per (cell, scheme) plus two header lines.
  EXPECT_EQ(static_cast<int>(std::count(monolithic_csv_->begin(),
                                        monolithic_csv_->end(), '\n')),
            2 + 2 * 2);
}

TEST_F(SweepEquivalenceTest, RoundRobinShardsMergeByteIdentically) {
  for (const int k : {1, 2, 3, 4, 7}) {
    EXPECT_EQ(RunShardedCsv(k, ShardStrategy::kRoundRobin), *monolithic_csv_)
        << "K=" << k;
  }
}

TEST_F(SweepEquivalenceTest, CostWeightedShardsMergeByteIdentically) {
  for (const int k : {2, 4}) {
    EXPECT_EQ(RunShardedCsv(k, ShardStrategy::kCostWeighted), *monolithic_csv_)
        << "K=" << k;
  }
}

TEST_F(SweepEquivalenceTest, MoreShardsThanUnitsStillMerges) {
  const int k = static_cast<int>(plan_->units.size()) + 5;
  EXPECT_EQ(RunShardedCsv(k, ShardStrategy::kRoundRobin), *monolithic_csv_);
}

TEST_F(SweepEquivalenceTest, MergeRejectsIncompleteAndDuplicateResultSets) {
  const std::vector<SweepUnitResult> full = RunSweepUnits(*plan_, plan_->units);
  std::vector<CellResult> cells;

  std::vector<SweepUnitResult> missing(full.begin(), full.end() - 1);
  serde::Status s = MergeSweepResults(*plan_, missing, &cells);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("missing"), std::string::npos);

  std::vector<SweepUnitResult> duplicated = full;
  duplicated.push_back(full.front());
  s = MergeSweepResults(*plan_, duplicated, &cells);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("duplicate"), std::string::npos);

  std::vector<SweepUnitResult> unknown = full;
  unknown.back().unit_id = static_cast<int>(plan_->units.size());
  s = MergeSweepResults(*plan_, unknown, &cells);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("unknown"), std::string::npos);
}

TEST_F(SweepEquivalenceTest, ThreadCountDoesNotChangeResults) {
  SweepRunOptions serial;
  serial.threads = 1;
  const std::vector<SweepUnitResult> one_thread =
      RunSweepUnits(*plan_, plan_->units, serial);
  SweepRunOptions wide;
  wide.threads = 8;
  const std::vector<SweepUnitResult> eight_threads =
      RunSweepUnits(*plan_, plan_->units, wide);
  EXPECT_EQ(one_thread, eight_threads);
}

}  // namespace
}  // namespace alert
