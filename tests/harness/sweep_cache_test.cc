// Tests for the persistent sweep unit-result cache (src/harness/sweep_cache.h):
// content-fingerprint stability across plan edits, strict cache-file parsing,
// cached-run equivalence with the uncached runner (cold, warm, and incremental
// after a spec edit), skip synthesis from a cached infeasible static oracle,
// dispatcher preseeding, and the accumulator's conflict diagnostics (which must
// name the unit and both payloads).
#include "src/harness/sweep_cache.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/harness/dispatch.h"
#include "src/harness/sweep_io.h"
#include "src/harness/sweep_plan.h"
#include "src/harness/sweep_runner.h"

namespace alert {
namespace {

// A small three-setting plan: grid 4's static oracle is infeasible for this cell at
// 12 inputs (exercises the skip path); grids 14/21 are feasible.
SweepSpec TestSpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kNoCoord};
  spec.seeds = {1};
  spec.num_inputs = 12;
  spec.grid_indices = {4, 14, 21};
  return spec;
}

std::string TempPath(const char* name) {
  // Hermetic across repeated runs: drop whatever a previous invocation left behind.
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

void ExpectSameResults(const std::vector<SweepUnitResult>& a,
                       const std::vector<SweepUnitResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "unit " << a[i].unit_id;
  }
}

// --- fingerprints -------------------------------------------------------------------

TEST(SweepUnitFingerprintTest, StableAcrossPlanEditsThatKeepTheUnit) {
  // Adding a grid setting reshuffles ids and the plan fingerprint; units whose
  // content is unchanged must keep their fingerprint — that is what makes a re-run
  // after a spec edit incremental.
  const SweepPlan before = BuildSweepPlan(TestSpec());
  SweepSpec edited = TestSpec();
  edited.grid_indices = {4, 7, 14, 21};  // new setting 7 lands in the middle
  const SweepPlan after = BuildSweepPlan(edited);
  ASSERT_NE(PlanFingerprint(before), PlanFingerprint(after));

  int matched = 0;
  for (const SweepUnit& old_unit : before.units) {
    for (const SweepUnit& new_unit : after.units) {
      if (new_unit.cell == old_unit.cell && new_unit.seed == old_unit.seed &&
          new_unit.grid_index == old_unit.grid_index &&
          new_unit.kind == old_unit.kind && new_unit.scheme == old_unit.scheme) {
        EXPECT_EQ(SweepUnitFingerprint(before.spec, old_unit),
                  SweepUnitFingerprint(edited, new_unit));
        ++matched;
      }
    }
  }
  EXPECT_EQ(matched, static_cast<int>(before.units.size()));
}

TEST(SweepUnitFingerprintTest, DistinctUnitsAndKnobsSeparate) {
  const SweepPlan plan = BuildSweepPlan(TestSpec());
  // All units in one plan are distinct content.
  for (size_t i = 0; i < plan.units.size(); ++i) {
    for (size_t j = i + 1; j < plan.units.size(); ++j) {
      EXPECT_NE(SweepUnitFingerprint(plan.spec, plan.units[i]),
                SweepUnitFingerprint(plan.spec, plan.units[j]))
          << "units " << i << " and " << j;
    }
  }
  // Spec knobs the execution depends on must change the fingerprint.
  const SweepUnit& unit = plan.units.front();
  const uint64_t base = SweepUnitFingerprint(plan.spec, unit);
  SweepSpec knobs = plan.spec;
  knobs.contention_scale = 2.0;
  EXPECT_NE(SweepUnitFingerprint(knobs, unit), base);
  knobs = plan.spec;
  knobs.profile_noise_sigma = 0.05;
  EXPECT_NE(SweepUnitFingerprint(knobs, unit), base);
  knobs = plan.spec;
  knobs.contention_window = std::make_pair(2, 6);
  EXPECT_NE(SweepUnitFingerprint(knobs, unit), base);
  SweepUnit inputs_changed = unit;
  inputs_changed.num_inputs = 99;
  EXPECT_NE(SweepUnitFingerprint(plan.spec, inputs_changed), base);
}

TEST(SweepUnitFingerprintTest, IndependentOfUnitId) {
  const SweepPlan plan = BuildSweepPlan(TestSpec());
  SweepUnit renumbered = plan.units.front();
  renumbered.id = 12345;
  EXPECT_EQ(SweepUnitFingerprint(plan.spec, renumbered),
            SweepUnitFingerprint(plan.spec, plan.units.front()));
}

// --- cache file ---------------------------------------------------------------------

TEST(SweepResultCacheTest, RecordSaveLoadRoundTrip) {
  const std::string path = TempPath("sweep_cache_roundtrip.cache");
  SweepResultCache cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kReadWrite, &cache).ok);
  EXPECT_EQ(cache.size(), 0u);

  SweepUnitResult result;
  result.unit_id = 3;
  result.usable = true;
  result.metric = 1.0 / 3.0;
  ASSERT_TRUE(cache.Record(111, 999, result).ok);
  SweepUnitResult skipped;
  skipped.unit_id = 4;
  skipped.skipped = true;
  ASSERT_TRUE(cache.Record(222, 999, skipped).ok);
  EXPECT_EQ(cache.newly_recorded(), 2u);
  ASSERT_TRUE(cache.Save().ok);

  SweepResultCache reloaded;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kRead, &reloaded).ok);
  EXPECT_EQ(reloaded.size(), 2u);
  SweepUnitResult out;
  ASSERT_TRUE(reloaded.Lookup(111, &out));
  EXPECT_EQ(out.unit_id, -1);  // position is the caller's business
  EXPECT_TRUE(out.usable);
  EXPECT_EQ(out.metric, 1.0 / 3.0);  // exact double round trip
  ASSERT_TRUE(reloaded.Lookup(222, &out));
  EXPECT_TRUE(out.skipped);
  EXPECT_FALSE(reloaded.Lookup(333, &out));
}

TEST(SweepResultCacheTest, ReadModeNeverWrites) {
  const std::string path = TempPath("sweep_cache_readonly.cache");
  SweepResultCache cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kRead, &cache).ok);
  SweepUnitResult result;
  result.unit_id = 0;
  ASSERT_TRUE(cache.Record(1, 2, result).ok);  // silently ignored
  EXPECT_EQ(cache.size(), 0u);
  ASSERT_TRUE(cache.Save().ok);  // no-op: no file appears
  std::string contents;
  EXPECT_FALSE(serde::ReadFile(path, &contents).ok);
}

TEST(SweepResultCacheTest, ConflictingRecordIsAnErrorNamingBothPayloads) {
  SweepResultCache cache;
  ASSERT_TRUE(SweepResultCache::Open(TempPath("sweep_cache_conflict.cache"),
                                     SweepCacheMode::kReadWrite, &cache)
                  .ok);
  SweepUnitResult result;
  result.unit_id = 0;
  result.usable = true;
  result.metric = 1.25;
  ASSERT_TRUE(cache.Record(42, 1, result).ok);
  ASSERT_TRUE(cache.Record(42, 1, result).ok);  // identical re-record: no-op
  result.metric = 2.5;
  const serde::Status s = cache.Record(42, 1, result);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("42"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("1.25"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("2.5"), std::string::npos) << s.message;
}

TEST(SweepResultCacheTest, MalformedFilesAreLoudErrors) {
  const auto expect_bad = [](const char* name, const std::string& contents,
                             const char* needle) {
    const std::string path = TempPath(name);
    ASSERT_TRUE(serde::WriteFile(path, contents).ok);
    SweepResultCache cache;
    const serde::Status s =
        SweepResultCache::Open(path, SweepCacheMode::kRead, &cache);
    EXPECT_FALSE(s.ok) << name;
    EXPECT_NE(s.message.find(needle), std::string::npos) << s.message;
    EXPECT_EQ(cache.size(), 0u);
  };
  expect_bad("cache_no_header.cache", "entry fp=1 plan=1 skipped=0 usable=1 metric=1\n",
             "sweep-cache");
  expect_bad("cache_truncated.cache",
             "sweep-cache v=1\nentry fp=1 plan=1 skipped=0 usable=1 metric=1\n",
             "end");
  expect_bad("cache_dup.cache",
             "sweep-cache v=1\n"
             "entry fp=7 plan=1 skipped=0 usable=1 metric=1\n"
             "entry fp=7 plan=1 skipped=0 usable=1 metric=1\n"
             "end\n",
             "duplicate");
  expect_bad("cache_bad_version.cache", "sweep-cache v=9\nend\n", "version");
  expect_bad("cache_trailing.cache", "sweep-cache v=1\nend\nentry fp=1\n", "after");
}

// --- cached execution ---------------------------------------------------------------

class SweepCacheRunTest : public ::testing::Test {
 protected:
  SweepCacheRunTest() : plan_(BuildSweepPlan(TestSpec())) {
    options_.threads = 2;
  }

  SweepPlan plan_;
  SweepRunOptions options_;
};

TEST_F(SweepCacheRunTest, ColdWarmAndIncrementalRunsMatchUncached) {
  const std::vector<SweepUnitResult> reference =
      RunSweepUnits(plan_, plan_.units, options_);

  // Cold cached run: everything executes, everything is recorded.
  const std::string path = TempPath("sweep_cache_run.cache");
  SweepResultCache cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kReadWrite, &cache).ok);
  SweepCacheRunStats cold;
  ExpectSameResults(RunSweepUnitsCached(plan_, plan_.units, options_, &cache, &cold),
                    reference);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.executed, plan_.units.size());
  EXPECT_EQ(cold.recorded, plan_.units.size());
  ASSERT_TRUE(cache.Save().ok);

  // Warm re-run: zero executions, identical results.
  SweepResultCache warm_cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kRead, &warm_cache).ok);
  SweepCacheRunStats warm;
  ExpectSameResults(
      RunSweepUnitsCached(plan_, plan_.units, options_, &warm_cache, &warm), reference);
  EXPECT_EQ(warm.hits, plan_.units.size());
  EXPECT_EQ(warm.executed, 0u);

  // Spec edit (one new grid setting): only the new setting's units execute, and the
  // merged cells equal a cold uncached run of the edited plan.
  SweepSpec edited = TestSpec();
  edited.grid_indices = {4, 7, 14, 21};
  const SweepPlan edited_plan = BuildSweepPlan(edited);
  SweepResultCache incr_cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kRead, &incr_cache).ok);
  SweepCacheRunStats incremental;
  const std::vector<SweepUnitResult> incremental_results = RunSweepUnitsCached(
      edited_plan, edited_plan.units, options_, &incr_cache, &incremental);
  const size_t new_units = edited_plan.units.size() - plan_.units.size();
  EXPECT_EQ(incremental.hits, plan_.units.size());
  EXPECT_EQ(incremental.executed + incremental.synthesized, new_units);
  ExpectSameResults(incremental_results,
                    RunSweepUnits(edited_plan, edited_plan.units, options_));

  std::vector<CellResult> incremental_cells;
  ASSERT_TRUE(
      MergeSweepResults(edited_plan, incremental_results, &incremental_cells).ok);
  std::vector<CellResult> cold_cells;
  ASSERT_TRUE(MergeSweepResults(edited_plan,
                                RunSweepUnits(edited_plan, edited_plan.units, options_),
                                &cold_cells)
                  .ok);
  EXPECT_EQ(SweepAggregateCsv(edited_plan, incremental_cells),
            SweepAggregateCsv(edited_plan, cold_cells));
}

TEST_F(SweepCacheRunTest, CachedStaticInfeasibilitySynthesizesSchemeSkips) {
  // Warm the cache with ONLY the static-oracle units; grid 4's static is infeasible.
  std::vector<SweepUnit> statics;
  for (const SweepUnit& unit : plan_.units) {
    if (unit.kind == SweepUnitKind::kStaticOracle) {
      statics.push_back(unit);
    }
  }
  const std::string path = TempPath("sweep_cache_synth.cache");
  SweepResultCache cache;
  ASSERT_TRUE(SweepResultCache::Open(path, SweepCacheMode::kReadWrite, &cache).ok);
  SweepCacheRunStats prime;
  const auto static_results =
      RunSweepUnitsCached(plan_, statics, options_, &cache, &prime);
  ASSERT_FALSE(static_results.front().usable);  // grid 4 is infeasible

  // Full run against that cache: statics hit; the infeasible setting's scheme units
  // are synthesized as skipped (never executed), the rest execute — and the whole
  // result vector still matches the uncached monolithic run exactly.
  SweepCacheRunStats stats;
  ExpectSameResults(RunSweepUnitsCached(plan_, plan_.units, options_, &cache, &stats),
                    RunSweepUnits(plan_, plan_.units, options_));
  EXPECT_EQ(stats.hits, statics.size());
  EXPECT_EQ(stats.synthesized, plan_.spec.schemes.size());  // grid 4's scheme units
  EXPECT_EQ(stats.executed,
            plan_.units.size() - statics.size() - stats.synthesized);
}

// --- dispatcher preseeding ----------------------------------------------------------

TEST_F(SweepCacheRunTest, DispatchWithPreseededResultsNeverAssignsThemAndMerges) {
  const std::vector<SweepUnitResult> reference =
      RunSweepUnits(plan_, plan_.units, options_);
  std::vector<CellResult> want;
  ASSERT_TRUE(MergeSweepResults(plan_, reference, &want).ok);

  // Preseed the first half of the units, dispatch the rest over worker threads.
  DispatchOptions dispatch_options;
  dispatch_options.num_workers = 2;
  std::vector<bool> preseeded(plan_.units.size(), false);
  for (size_t i = 0; i < plan_.units.size() / 2; ++i) {
    dispatch_options.preseeded_results.push_back(reference[i]);
    preseeded[i] = true;
  }
  bool assigned_preseeded_unit = false;
  dispatch_options.on_assign = [&](int, int, std::span<const int> unit_ids) {
    for (const int id : unit_ids) {
      if (preseeded[static_cast<size_t>(id)]) {
        assigned_preseeded_unit = true;
      }
    }
  };

  InProcessTransport transport;
  std::vector<CellResult> got;
  DispatchStats stats;
  ASSERT_TRUE(DispatchSweep(plan_, transport, dispatch_options, &got, &stats).ok);
  EXPECT_FALSE(assigned_preseeded_unit);
  EXPECT_EQ(stats.preseeded, static_cast<int>(plan_.units.size() / 2));
  EXPECT_EQ(SweepAggregateCsv(plan_, got), SweepAggregateCsv(plan_, want));
}

TEST_F(SweepCacheRunTest, FullyPreseededDispatchLaunchesNoWorker) {
  const std::vector<SweepUnitResult> reference =
      RunSweepUnits(plan_, plan_.units, options_);
  std::vector<CellResult> want;
  ASSERT_TRUE(MergeSweepResults(plan_, reference, &want).ok);

  DispatchOptions dispatch_options;
  dispatch_options.num_workers = 2;
  dispatch_options.preseeded_results = reference;
  InProcessTransport transport;
  std::vector<CellResult> got;
  DispatchStats stats;
  ASSERT_TRUE(DispatchSweep(plan_, transport, dispatch_options, &got, &stats).ok);
  EXPECT_EQ(stats.workers_launched, 0);
  EXPECT_EQ(stats.preseeded, static_cast<int>(plan_.units.size()));
  EXPECT_EQ(SweepAggregateCsv(plan_, got), SweepAggregateCsv(plan_, want));
}

TEST_F(SweepCacheRunTest, ConflictingPreseedFailsBeforeAnyWork) {
  std::vector<SweepUnitResult> bad(2);
  bad[0].unit_id = 0;
  bad[0].usable = true;
  bad[0].metric = 1.0;
  bad[1] = bad[0];
  bad[1].metric = 2.0;  // same unit, different payload
  DispatchOptions dispatch_options;
  dispatch_options.num_workers = 1;
  dispatch_options.preseeded_results = bad;
  InProcessTransport transport;
  std::vector<CellResult> out;
  DispatchStats stats;
  const serde::Status s = DispatchSweep(plan_, transport, dispatch_options, &out, &stats);
  EXPECT_FALSE(s.ok);
  EXPECT_EQ(stats.workers_launched, 0);
}

// --- accumulator conflict diagnostics -----------------------------------------------

TEST_F(SweepCacheRunTest, ConflictErrorNamesTheUnitAndBothValues) {
  SweepMergeAccumulator accumulator(plan_);
  SweepUnitResult first;
  first.unit_id = 5;
  first.usable = true;
  first.metric = 1.25;
  ASSERT_TRUE(accumulator.Add(first).ok);

  SweepUnitResult conflicting = first;
  conflicting.metric = 3.75;
  const serde::Status s = accumulator.Add(conflicting);
  ASSERT_FALSE(s.ok);
  // The operator must see which unit disagreed and both payloads, not just "they
  // conflicted".
  EXPECT_NE(s.message.find("unit id 5"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("1.25"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("3.75"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("recorded"), std::string::npos) << s.message;
  EXPECT_NE(s.message.find("incoming"), std::string::npos) << s.message;
}

TEST_F(SweepCacheRunTest, StrictMergeNamesIdenticalDuplicates) {
  std::vector<SweepUnitResult> results = RunSweepUnits(plan_, plan_.units, options_);
  results.push_back(results.front());  // identical duplicate
  std::vector<CellResult> cells;
  const serde::Status s = MergeSweepResults(plan_, results, &cells);
  ASSERT_FALSE(s.ok);
  EXPECT_NE(s.message.find("duplicate result for unit id 0"), std::string::npos)
      << s.message;
  EXPECT_NE(s.message.find("identical"), std::string::npos) << s.message;
}

}  // namespace
}  // namespace alert
