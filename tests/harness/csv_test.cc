#include "src/harness/csv.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/harness/constraint_grid.h"

namespace alert {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CsvTest, TraceRoundTripsExactly) {
  TraceOptions options;
  options.num_inputs = 120;
  options.seed = 77;
  const EnvironmentTrace original = MakeEnvironmentTrace(
      TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory, options);

  const std::string path = TempPath("trace_roundtrip.csv");
  ASSERT_TRUE(WriteTraceCsv(path, original));

  EnvironmentTrace loaded;
  ASSERT_TRUE(ReadTraceCsv(path, &loaded));
  ASSERT_EQ(loaded.num_inputs(), original.num_inputs());
  EXPECT_EQ(loaded.task, original.task);
  EXPECT_EQ(loaded.platform, original.platform);
  EXPECT_EQ(loaded.contention, original.contention);
  for (int n = 0; n < original.num_inputs(); ++n) {
    const auto& a = original.inputs[static_cast<size_t>(n)];
    const auto& b = loaded.inputs[static_cast<size_t>(n)];
    EXPECT_EQ(a.contention_multiplier, b.contention_multiplier);
    EXPECT_EQ(a.contention_active, b.contention_active);
    EXPECT_EQ(a.extra_idle_power, b.extra_idle_power);
    EXPECT_EQ(a.input_factor, b.input_factor);
    EXPECT_EQ(a.noise_multiplier, b.noise_multiplier);
    EXPECT_EQ(a.tail_multiplier, b.tail_multiplier);
    EXPECT_EQ(a.drift_multiplier, b.drift_multiplier);
  }
  std::remove(path.c_str());
}

TEST(CsvTest, SentenceStructureRoundTrips) {
  TraceOptions options;
  options.num_inputs = 100;
  options.seed = 13;
  const EnvironmentTrace original = MakeEnvironmentTrace(
      TaskId::kSentencePrediction, PlatformId::kCpu1, ContentionType::kNone, options);
  const std::string path = TempPath("trace_sentences.csv");
  ASSERT_TRUE(WriteTraceCsv(path, original));
  EnvironmentTrace loaded;
  ASSERT_TRUE(ReadTraceCsv(path, &loaded));
  ASSERT_TRUE(loaded.has_sentences());
  EXPECT_EQ(loaded.num_sentences, original.num_sentences);
  EXPECT_EQ(loaded.sentence_length, original.sentence_length);
  EXPECT_EQ(loaded.sentence_of_input, original.sentence_of_input);
  EXPECT_EQ(loaded.word_in_sentence, original.word_in_sentence);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadRejectsMissingFile) {
  EnvironmentTrace t;
  EXPECT_FALSE(ReadTraceCsv(TempPath("does_not_exist.csv"), &t));
}

TEST(CsvTest, RunRecordsExport) {
  ExperimentOptions options;
  options.num_inputs = 50;
  options.seed = 5;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                options);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler s(stack.space(), goals);
  const RunResult run = ex.Run(stack, s, goals, /*keep_records=*/true);

  const std::string path = TempPath("run.csv");
  ASSERT_TRUE(WriteRunCsv(path, run));

  // 1 comment + 1 header + 50 data lines.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  int lines = 0;
  int c = 0;
  while ((c = std::fgetc(f)) != EOF) {
    lines += c == '\n' ? 1 : 0;
  }
  std::fclose(f);
  EXPECT_EQ(lines, 52);
  std::remove(path.c_str());
}

TEST(CsvTest, RunExportRequiresRecords) {
  RunResult empty;
  EXPECT_FALSE(WriteRunCsv(TempPath("empty_run.csv"), empty));
}

}  // namespace
}  // namespace alert
