// Golden-file regression pin for BuildConstraintGrid: every value of the 36-setting
// Table 3 grid (image task, CPU1, both goal modes), formatted with full %.17g
// precision.  Sweep units address settings by grid index, and shard/merge
// byte-identity depends on every process enumerating the identical grid — so a change
// here must be deliberate (regenerate with:
//   ctest -R ConstraintGridGolden --output-on-failure
// failing output shows the freshly formatted grid; or run this binary with
// --gtest_also_run_disabled_tests to print it).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/common/serde.h"
#include "src/harness/constraint_grid.h"

namespace alert {
namespace {

std::string FormatGrid(GoalMode mode, TaskId task, PlatformId platform) {
  std::string text = "grid mode=" + std::string(GoalModeName(mode)) +
                     " task=" + std::string(TaskName(task)) +
                     " platform=" + std::string(PlatformName(platform)) + "\n";
  const std::vector<Goals> grid = BuildConstraintGrid(mode, task, platform);
  for (size_t i = 0; i < grid.size(); ++i) {
    const Goals& g = grid[i];
    text += "setting=" + std::to_string(i) +
            " deadline=" + serde::FormatDouble(g.deadline) +
            " accuracy_goal=" + serde::FormatDouble(g.accuracy_goal) +
            " energy_budget=" + serde::FormatDouble(g.energy_budget) +
            " prob_threshold=" + serde::FormatDouble(g.prob_threshold) + "\n";
  }
  return text;
}

std::string FormatBothModes() {
  return FormatGrid(GoalMode::kMinimizeEnergy, TaskId::kImageClassification,
                    PlatformId::kCpu1) +
         FormatGrid(GoalMode::kMaximizeAccuracy, TaskId::kImageClassification,
                    PlatformId::kCpu1);
}

TEST(ConstraintGridGoldenTest, ImageCpu1GridMatchesGoldenFile) {
  const std::string path =
      std::string(ALERT_TESTDATA_DIR) + "/constraint_grid_cpu1_image.golden";
  std::string golden;
  const serde::Status s = serde::ReadFile(path, &golden);
  ASSERT_TRUE(s.ok) << s.message;
  const std::string actual = FormatBothModes();
  EXPECT_EQ(actual, golden)
      << "BuildConstraintGrid output changed.  If deliberate, update " << path
      << " with the 'actual' text above (grid indices are the sharded sweeps' unit "
         "addressing, so merged results from mixed-version shards would be wrong).";
}

// Not a check — a regeneration helper: prints the current grid so the golden file can
// be refreshed after an intentional grid change.
TEST(ConstraintGridGoldenTest, DISABLED_PrintCurrentGrid) {
  std::fputs(FormatBothModes().c_str(), stdout);
}

}  // namespace
}  // namespace alert
