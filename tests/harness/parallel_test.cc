#include "src/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace alert {
namespace {

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  constexpr int kCount = 1000;
  std::vector<std::atomic<int>> visits(kCount);
  ParallelFor(kCount, [&](int i) { visits[static_cast<size_t>(i)].fetch_add(1); });
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(visits[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, ZeroAndNegativeCountsAreNoOps) {
  int calls = 0;
  ParallelFor(0, [&](int) { ++calls; });
  ParallelFor(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForTest, PropagatesWorkerExceptionInsteadOfTerminating) {
  EXPECT_THROW(
      ParallelFor(
          64, [](int i) {
            if (i == 17) {
              throw std::runtime_error("worker failure");
            }
          },
          /*max_threads=*/4),
      std::runtime_error);
}

TEST(ParallelForTest, PropagatedExceptionCarriesTheWorkerMessage) {
  try {
    ParallelFor(
        8, [](int) { throw std::runtime_error("boom"); }, /*max_threads=*/4);
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ParallelForTest, FailureStopsHandingOutNewIndices) {
  // After a worker throws, remaining indices are abandoned; with one item per worker
  // round this must keep the processed count well below the total.
  constexpr int kCount = 100000;
  std::atomic<int> processed{0};
  EXPECT_THROW(ParallelFor(
                   kCount,
                   [&](int i) {
                     if (i == 0) {
                       throw std::logic_error("early failure");
                     }
                     processed.fetch_add(1);
                   },
                   /*max_threads=*/4),
               std::logic_error);
  EXPECT_LT(processed.load(), kCount);
}

TEST(ParallelForTest, SerialPathPropagatesToo) {
  EXPECT_THROW(ParallelFor(
                   4, [](int i) {
                     if (i == 2) {
                       throw std::runtime_error("serial failure");
                     }
                   },
                   /*max_threads=*/1),
               std::runtime_error);
}

}  // namespace
}  // namespace alert
