// Plan enumeration and partitioning: stable deterministic order, exhaustive disjoint
// shards under both strategies, and a sane cost model.
#include "src/harness/sweep_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace alert {
namespace {

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.cells.push_back(SweepCellSpec{TaskId::kSentencePrediction, PlatformId::kCpu2,
                                     ContentionType::kMemory,
                                     GoalMode::kMaximizeAccuracy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kSysOnly, SchemeId::kAppOnly};
  spec.seeds = {1, 2};
  spec.num_inputs = 50;
  spec.grid_indices = {3, 17, 30};
  return spec;
}

TEST(SweepPlanTest, EnumeratesTheFullCrossProductInStableOrder) {
  const SweepPlan plan = BuildSweepPlan(SmallSpec());
  // cells x seeds x settings x (static + schemes).
  EXPECT_EQ(plan.units.size(), 2u * 2u * 3u * (1u + 3u));
  for (size_t i = 0; i < plan.units.size(); ++i) {
    EXPECT_EQ(plan.units[i].id, static_cast<int>(i));
  }
  // The nesting order is cells -> seeds -> settings -> (static, schemes...).
  const SweepUnit& first = plan.units[0];
  EXPECT_EQ(first.kind, SweepUnitKind::kStaticOracle);
  EXPECT_EQ(first.cell, SmallSpec().cells[0]);
  EXPECT_EQ(first.seed, 1u);
  EXPECT_EQ(first.grid_index, 3);
  const SweepUnit& second = plan.units[1];
  EXPECT_EQ(second.kind, SweepUnitKind::kScheme);
  EXPECT_EQ(second.scheme, SchemeId::kAlert);
  // Second setting starts right after the first block.
  EXPECT_EQ(plan.units[4].kind, SweepUnitKind::kStaticOracle);
  EXPECT_EQ(plan.units[4].grid_index, 17);
  // Second half of the plan is the second cell.
  EXPECT_EQ(plan.units[plan.units.size() / 2].cell, SmallSpec().cells[1]);

  // Enumeration is deterministic: building twice gives identical units.
  const SweepPlan again = BuildSweepPlan(SmallSpec());
  EXPECT_EQ(plan.units, again.units);
}

TEST(SweepPlanTest, EmptyGridSubsetMeansTheFullGrid) {
  SweepSpec spec = SmallSpec();
  spec.cells.resize(1);
  spec.grid_indices.clear();
  const SweepPlan plan = BuildSweepPlan(spec);
  EXPECT_EQ(plan.grid_indices.size(), 36u);
  EXPECT_EQ(plan.units.size(), 36u * 2u * 4u);
}

TEST(SweepPlanTest, GridSubsetIsCanonicalized) {
  SweepSpec spec = SmallSpec();
  spec.grid_indices = {30, 3, 17, 3};
  const SweepPlan plan = BuildSweepPlan(spec);
  EXPECT_EQ(plan.grid_indices, (std::vector<int>{3, 17, 30}));
  EXPECT_EQ(plan.units, BuildSweepPlan(SmallSpec()).units);
}

TEST(SweepPlanTest, ValidateRejectsBadSpecs) {
  EXPECT_FALSE(ValidateSweepSpec(SweepSpec{}).ok);  // no cells/schemes

  SweepSpec dup_cell = SmallSpec();
  dup_cell.cells.push_back(dup_cell.cells[0]);
  EXPECT_FALSE(ValidateSweepSpec(dup_cell).ok);

  SweepSpec bad_grid = SmallSpec();
  bad_grid.grid_indices = {36};
  EXPECT_FALSE(ValidateSweepSpec(bad_grid).ok);

  SweepSpec qa = SmallSpec();
  qa.cells[0].task = TaskId::kQuestionAnswering;
  EXPECT_FALSE(ValidateSweepSpec(qa).ok);

  SweepSpec no_inputs = SmallSpec();
  no_inputs.num_inputs = 0;
  EXPECT_FALSE(ValidateSweepSpec(no_inputs).ok);

  // A platform the task's models cannot run on must be a Status error, not an
  // ALERT_CHECK abort deep inside BuildConstraintGrid (the anytime image network has
  // no embedded-board profile).
  SweepSpec unsupported = SmallSpec();
  unsupported.cells[0].platform = PlatformId::kEmbedded;
  const serde::Status s = ValidateSweepSpec(unsupported);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("Embedded"), std::string::npos);

  EXPECT_TRUE(ValidateSweepSpec(SmallSpec()).ok);
}

TEST(SweepPlanTest, CostModelOrdersUnitsSensibly) {
  const SweepPlan plan = BuildSweepPlan(SmallSpec());
  double static_cost = 0.0;
  double alert_cost = 0.0;
  double app_only_cost = 0.0;
  for (const SweepUnit& unit : plan.units) {
    const double cost = SweepUnitCost(unit);
    EXPECT_GT(cost, 0.0);
    if (unit.cell != SmallSpec().cells[0] || unit.seed != 1 || unit.grid_index != 3) {
      continue;
    }
    if (unit.kind == SweepUnitKind::kStaticOracle) {
      static_cost = cost;
    } else if (unit.scheme == SchemeId::kAlert) {
      alert_cost = cost;
    } else if (unit.scheme == SchemeId::kAppOnly) {
      app_only_cost = cost;
    }
  }
  // The exhaustive static search and the full ALERT scoring pass both scan the whole
  // kBoth configuration space; the fixed-candidate baseline is far cheaper.
  EXPECT_EQ(static_cost, alert_cost);
  EXPECT_GT(alert_cost, 10.0 * app_only_cost);
}

void ExpectExhaustiveAndDisjoint(const SweepPlan& plan,
                                 const std::vector<std::vector<SweepUnit>>& shards) {
  std::set<int> seen;
  for (const auto& shard : shards) {
    for (size_t i = 0; i < shard.size(); ++i) {
      EXPECT_TRUE(seen.insert(shard[i].id).second) << "unit in two shards";
      EXPECT_EQ(shard[i], plan.units[static_cast<size_t>(shard[i].id)]);
      if (i > 0) {
        EXPECT_LT(shard[i - 1].id, shard[i].id) << "shard not in plan order";
      }
    }
  }
  EXPECT_EQ(seen.size(), plan.units.size());
}

TEST(SweepPlanTest, RoundRobinPartitionIsExhaustiveAndBalancedByCount) {
  const SweepPlan plan = BuildSweepPlan(SmallSpec());
  for (const int k : {1, 2, 3, 7, 48, 100}) {
    const auto shards = PartitionPlan(plan, k, ShardStrategy::kRoundRobin);
    ASSERT_EQ(shards.size(), static_cast<size_t>(k));
    ExpectExhaustiveAndDisjoint(plan, shards);
    size_t max_units = 0;
    size_t min_units = plan.units.size();
    for (const auto& shard : shards) {
      max_units = std::max(max_units, shard.size());
      min_units = std::min(min_units, shard.size());
    }
    EXPECT_LE(max_units - min_units, 1u) << "round-robin must balance unit counts";
  }
}

TEST(SweepPlanTest, CostWeightedPartitionBalancesCost) {
  const SweepPlan plan = BuildSweepPlan(SmallSpec());
  double total = 0.0;
  double heaviest = 0.0;
  for (const SweepUnit& unit : plan.units) {
    total += SweepUnitCost(unit);
    heaviest = std::max(heaviest, SweepUnitCost(unit));
  }
  for (const int k : {2, 3, 7}) {
    const auto shards = PartitionPlan(plan, k, ShardStrategy::kCostWeighted);
    ExpectExhaustiveAndDisjoint(plan, shards);
    double max_load = 0.0;
    for (const auto& shard : shards) {
      double load = 0.0;
      for (const SweepUnit& unit : shard) {
        load += SweepUnitCost(unit);
      }
      max_load = std::max(max_load, load);
    }
    // LPT guarantee: no shard exceeds a perfect split by more than one unit.
    EXPECT_LE(max_load, total / k + heaviest);
    // And it beats round-robin's worst shard (or ties) on this heterogeneous plan.
    double rr_max_load = 0.0;
    for (const auto& shard : PartitionPlan(plan, k, ShardStrategy::kRoundRobin)) {
      double load = 0.0;
      for (const SweepUnit& unit : shard) {
        load += SweepUnitCost(unit);
      }
      rr_max_load = std::max(rr_max_load, load);
    }
    EXPECT_LE(max_load, rr_max_load + 1e-9);
  }
}

TEST(SweepPlanTest, PartitionsAreDeterministic) {
  const SweepPlan plan = BuildSweepPlan(SmallSpec());
  for (const ShardStrategy strategy :
       {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
    EXPECT_EQ(PartitionPlan(plan, 5, strategy), PartitionPlan(plan, 5, strategy));
  }
}

TEST(SweepPlanTest, StrategyNamesRoundTrip) {
  for (const ShardStrategy strategy :
       {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
    ShardStrategy parsed;
    ASSERT_TRUE(ParseShardStrategy(ShardStrategyName(strategy), &parsed).ok);
    EXPECT_EQ(parsed, strategy);
  }
  ShardStrategy parsed;
  EXPECT_FALSE(ParseShardStrategy("random", &parsed).ok);
}

}  // namespace
}  // namespace alert
