#include "src/harness/experiment.h"

#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/harness/schemes.h"

namespace alert {
namespace {

ExperimentOptions SmallOptions(uint64_t seed = 3) {
  ExperimentOptions o;
  o.num_inputs = 120;
  o.seed = seed;
  return o;
}

Goals ImageMinEnergyGoals() {
  Goals g;
  g.mode = GoalMode::kMinimizeEnergy;
  g.deadline = 0.08;
  g.accuracy_goal = 0.9;
  return g;
}

TEST(ExperimentTest, BuildsAllThreeStacks) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                SmallOptions());
  EXPECT_EQ(ex.stack(DnnSetChoice::kTraditionalOnly).space().num_models(), 5);
  EXPECT_EQ(ex.stack(DnnSetChoice::kAnytimeOnly).space().num_models(), 1);
  EXPECT_EQ(ex.stack(DnnSetChoice::kBoth).space().num_models(), 6);
}

TEST(ExperimentTest, RunIsDeterministic) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                SmallOptions());
  const Goals goals = ImageMinEnergyGoals();
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler s1(stack.space(), goals);
  AlertScheduler s2(stack.space(), goals);
  const RunResult a = ex.Run(stack, s1, goals);
  const RunResult b = ex.Run(stack, s2, goals);
  EXPECT_EQ(a.avg_energy, b.avg_energy);
  EXPECT_EQ(a.avg_accuracy, b.avg_accuracy);
  EXPECT_EQ(a.violation_fraction, b.violation_fraction);
}

TEST(ExperimentTest, RecordsKeptOnlyWhenRequested) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                SmallOptions());
  const Goals goals = ImageMinEnergyGoals();
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler s(stack.space(), goals);
  EXPECT_TRUE(ex.Run(stack, s, goals, false).records.empty());
  AlertScheduler s2(stack.space(), goals);
  EXPECT_EQ(ex.Run(stack, s2, goals, true).records.size(), 120u);
}

TEST(ExperimentTest, AggregatesAreConsistentWithRecords) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                SmallOptions());
  const Goals goals = ImageMinEnergyGoals();
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler s(stack.space(), goals);
  const RunResult r = ex.Run(stack, s, goals, true);
  double sum_energy = 0.0;
  double sum_acc = 0.0;
  int violations = 0;
  for (const auto& rec : r.records) {
    sum_energy += rec.measurement.energy;
    sum_acc += rec.measurement.accuracy;
    violations += rec.violated ? 1 : 0;
  }
  EXPECT_NEAR(r.avg_energy, sum_energy / 120.0, 1e-9);
  EXPECT_NEAR(r.avg_accuracy, sum_acc / 120.0, 1e-9);
  EXPECT_NEAR(r.violation_fraction, violations / 120.0, 1e-9);
  EXPECT_NEAR(r.avg_error, 1.0 - r.avg_accuracy, 1e-12);
}

TEST(ExperimentTest, RunStaticUsesFixedConfiguration) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                SmallOptions());
  const Goals goals = ImageMinEnergyGoals();
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  const Configuration config{stack.space().candidate(2), 4};
  const RunResult r = ex.RunStatic(stack, config, goals, true);
  for (const auto& rec : r.records) {
    EXPECT_EQ(rec.decision.candidate.model_index, config.candidate.model_index);
    EXPECT_EQ(rec.decision.power_index, config.power_index);
  }
}

TEST(ViolationTest, DeadlineMissIsViolation) {
  Goals g = ImageMinEnergyGoals();
  Measurement m;
  m.deadline_met = false;
  m.accuracy = 0.95;
  EXPECT_TRUE(Experiment::Violates(g, m));
}

TEST(ViolationTest, SubGoalAccuracyIsViolationInMinEnergyMode) {
  Goals g = ImageMinEnergyGoals();
  Measurement m;
  m.deadline_met = true;
  m.accuracy = 0.85;
  EXPECT_TRUE(Experiment::Violates(g, m));
  m.accuracy = 0.93;
  EXPECT_FALSE(Experiment::Violates(g, m));
}

TEST(ViolationTest, EnergyIsJudgedOnAverageInMinErrorMode) {
  Goals g;
  g.mode = GoalMode::kMaximizeAccuracy;
  g.deadline = 0.08;
  g.energy_budget = 1.0;
  Measurement m;
  m.deadline_met = true;
  m.energy = 5.0;  // over budget per input, but per-input energy is not a violation
  EXPECT_FALSE(Experiment::Violates(g, m));

  RunResult r;
  r.violation_fraction = 0.0;
  r.avg_energy = 1.2;
  EXPECT_TRUE(SettingViolated(g, r));
  r.avg_energy = 0.9;
  EXPECT_FALSE(SettingViolated(g, r));
}

TEST(ViolationTest, TenPercentInputRule) {
  Goals g = ImageMinEnergyGoals();
  RunResult r;
  r.violation_fraction = 0.09;
  EXPECT_FALSE(SettingViolated(g, r));
  r.violation_fraction = 0.11;
  EXPECT_TRUE(SettingViolated(g, r));
}

TEST(ExperimentTest, NlpRunUsesSentenceDeadlines) {
  ExperimentOptions o;
  o.num_inputs = 200;
  o.seed = 5;
  Experiment ex(TaskId::kSentencePrediction, PlatformId::kCpu1, ContentionType::kNone, o);
  ASSERT_TRUE(ex.trace().has_sentences());
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.015;  // per-word budget
  goals.accuracy_goal = 0.25;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler s(stack.space(), goals);
  const RunResult r = ex.Run(stack, s, goals, true);
  // Per-word deadlines vary (shared budget), unlike the fixed-deadline image task.
  bool varied = false;
  for (const auto& rec : r.records) {
    if (std::abs(rec.measurement.deadline - 0.015) > 1e-6) {
      varied = true;
      break;
    }
  }
  EXPECT_TRUE(varied);
}

TEST(ExperimentTest, ContentionWindowPassesThrough) {
  ExperimentOptions o = SmallOptions();
  o.contention_window = std::make_pair(10, 20);
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                o);
  for (int n = 0; n < ex.trace().num_inputs(); ++n) {
    EXPECT_EQ(ex.trace().inputs[static_cast<size_t>(n)].contention_active,
              n >= 10 && n < 20);
  }
}

}  // namespace
}  // namespace alert
