// Round-trip property tests for the sweep wire formats: serialize -> parse ->
// serialize must be the identity (both on values and on bytes), and malformed input
// must come back as a Status error, never a crash.
#include "src/harness/sweep_io.h"

#include <gtest/gtest.h>

#include "src/harness/experiment.h"

namespace alert {
namespace {

SweepSpec ExampleSpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.cells.push_back(SweepCellSpec{TaskId::kSentencePrediction, PlatformId::kCpu2,
                                     ContentionType::kMemory,
                                     GoalMode::kMaximizeAccuracy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kSysOnly, SchemeId::kOracle};
  spec.seeds = {1, 20200715};
  spec.num_inputs = 120;
  spec.grid_indices = {0, 7, 35};
  spec.contention_scale = 1.25;
  spec.profile_noise_sigma = 0.1;
  return spec;
}

TEST(SweepSpecSerdeTest, RoundTripIsIdentity) {
  const SweepSpec spec = ExampleSpec();
  const std::string text = SerializeSweepSpec(spec);
  SweepSpec parsed;
  const serde::Status s = ParseSweepSpec(text, &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, spec);
  EXPECT_EQ(SerializeSweepSpec(parsed), text);  // byte-stable second generation
}

TEST(SweepSpecSerdeTest, ContentionWindowSurvives) {
  SweepSpec spec = ExampleSpec();
  spec.contention_window = std::make_pair(46, 119);
  SweepSpec parsed;
  ASSERT_TRUE(ParseSweepSpec(SerializeSweepSpec(spec), &parsed).ok);
  EXPECT_EQ(parsed, spec);
}

TEST(SweepSpecSerdeTest, MalformedSpecsAreStatusErrors) {
  SweepSpec out;
  EXPECT_FALSE(ParseSweepSpec("", &out).ok);
  EXPECT_FALSE(ParseSweepSpec("bogus v=1\nend\n", &out).ok);
  EXPECT_FALSE(ParseSweepSpec("sweep-spec v=99\nend\n", &out).ok);  // bad version
  const std::string good = SerializeSweepSpec(ExampleSpec());
  // Truncation (missing 'end') is detected.
  EXPECT_FALSE(ParseSweepSpec(good.substr(0, good.size() - 4), &out).ok);
  // An unknown record tag is rejected.
  std::string unknown = good;
  unknown.insert(unknown.find("end\n"), "mystery field=1\n");
  EXPECT_FALSE(ParseSweepSpec(unknown, &out).ok);
  // Out-of-range enum values are rejected.
  std::string bad_scheme = good;
  bad_scheme.replace(bad_scheme.find("scheme id=0"), 11, "scheme id=99");
  EXPECT_FALSE(ParseSweepSpec(bad_scheme, &out).ok);
  // Semantic validation runs after parsing: duplicate seeds are rejected.
  std::string dup_seed = good;
  dup_seed.insert(dup_seed.find("end\n"), "seed value=1\n");
  EXPECT_FALSE(ParseSweepSpec(dup_seed, &out).ok);
  // Grid indices outside the 36-setting grid are rejected.
  std::string bad_grid = good;
  bad_grid.insert(bad_grid.find("end\n"), "grid setting=36\n");
  EXPECT_FALSE(ParseSweepSpec(bad_grid, &out).ok);
}

TEST(SweepUnitSerdeTest, RoundTripBothKinds) {
  SweepUnit unit;
  unit.id = 41;
  unit.cell = SweepCellSpec{TaskId::kSentencePrediction, PlatformId::kGpu,
                            ContentionType::kCompute, GoalMode::kMaximizeAccuracy};
  unit.seed = 987654321098765ull;
  unit.grid_index = 35;
  unit.num_inputs = 300;

  unit.kind = SweepUnitKind::kStaticOracle;
  SweepUnit parsed;
  ASSERT_TRUE(ParseSweepUnit(SerializeSweepUnit(unit), &parsed).ok);
  EXPECT_EQ(parsed, unit);

  unit.kind = SweepUnitKind::kScheme;
  unit.scheme = SchemeId::kNoCoord;
  ASSERT_TRUE(ParseSweepUnit(SerializeSweepUnit(unit), &parsed).ok);
  EXPECT_EQ(parsed, unit);
  EXPECT_EQ(SerializeSweepUnit(parsed), SerializeSweepUnit(unit));
}

TEST(SweepUnitSerdeTest, MalformedUnitsAreStatusErrors) {
  SweepUnit out;
  EXPECT_FALSE(ParseSweepUnit("", &out).ok);
  EXPECT_FALSE(ParseSweepUnit("result unit=1", &out).ok);  // wrong tag
  // Missing scheme on a scheme-kind unit.
  EXPECT_FALSE(
      ParseSweepUnit(
          "unit id=1 task=0 platform=1 contention=0 mode=0 seed=1 grid=0 kind=1 "
          "inputs=30",
          &out)
          .ok);
  // Unknown field.
  EXPECT_FALSE(
      ParseSweepUnit(
          "unit id=1 task=0 platform=1 contention=0 mode=0 seed=1 grid=0 kind=0 "
          "inputs=30 extra=1",
          &out)
          .ok);
  // Out-of-range platform.
  EXPECT_FALSE(
      ParseSweepUnit(
          "unit id=1 task=0 platform=9 contention=0 mode=0 seed=1 grid=0 kind=0 "
          "inputs=30",
          &out)
          .ok);
  // Non-positive inputs.
  EXPECT_FALSE(
      ParseSweepUnit(
          "unit id=1 task=0 platform=1 contention=0 mode=0 seed=1 grid=0 kind=0 "
          "inputs=0",
          &out)
          .ok);
}

TEST(SweepResultSerdeTest, RoundTripAllShapes) {
  SweepUnitResult usable;
  usable.unit_id = 3;
  usable.usable = true;
  usable.metric = 0.83769326123830135;
  SweepUnitResult violated;
  violated.unit_id = 4;
  SweepUnitResult skipped;
  skipped.unit_id = 5;
  skipped.skipped = true;
  for (const SweepUnitResult& result : {usable, violated, skipped}) {
    SweepUnitResult parsed;
    ASSERT_TRUE(ParseSweepUnitResult(SerializeSweepUnitResult(result), &parsed).ok);
    EXPECT_EQ(parsed, result);
  }
}

TEST(SweepResultSerdeTest, MalformedResultsAreStatusErrors) {
  SweepUnitResult out;
  EXPECT_FALSE(ParseSweepUnitResult("result unit=1 skipped=0 usable=1", &out).ok)
      << "usable result must carry a metric";
  EXPECT_FALSE(
      ParseSweepUnitResult("result unit=1 skipped=1 usable=1 metric=1", &out).ok)
      << "skipped and usable are mutually exclusive";
  EXPECT_FALSE(
      ParseSweepUnitResult("result unit=1 skipped=0 usable=1 metric=nan", &out).ok)
      << "NaN metrics must not reach the merge plane";
  EXPECT_FALSE(
      ParseSweepUnitResult("result unit=-2 skipped=0 usable=0", &out).ok);
}

TEST(ShardResultsSerdeTest, RoundTripAndPlanFingerprintGuard) {
  ShardResults shard;
  shard.plan_fingerprint = 13678292389700777394ull;
  shard.num_shards = 4;
  shard.shard_index = 2;
  shard.strategy = ShardStrategy::kCostWeighted;
  SweepUnitResult r;
  r.unit_id = 0;
  r.usable = true;
  r.metric = 0.5;
  shard.results.push_back(r);
  r.unit_id = 7;
  r.usable = false;
  r.metric = 0.0;
  shard.results.push_back(r);

  const std::string text = SerializeShardResults(shard);
  ShardResults parsed;
  const serde::Status s = ParseShardResults(text, &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, shard);
  EXPECT_EQ(SerializeShardResults(parsed), text);
}

TEST(ShardResultsSerdeTest, MalformedFilesAreStatusErrors) {
  ShardResults out;
  EXPECT_FALSE(ParseShardResults("", &out).ok);
  ShardResults shard;
  shard.results.push_back(SweepUnitResult{.unit_id = 0});
  const std::string good = SerializeShardResults(shard);
  // Truncated: no 'end'.
  EXPECT_FALSE(ParseShardResults(good.substr(0, good.size() - 4), &out).ok);
  // Header unit count disagrees with the body.
  std::string wrong_count = good;
  wrong_count.replace(wrong_count.find("units=1"), 7, "units=2");
  EXPECT_FALSE(ParseShardResults(wrong_count, &out).ok);
  // Shard index out of range.
  std::string bad_shard = good;
  bad_shard.replace(bad_shard.find("shard=0"), 7, "shard=5");
  EXPECT_FALSE(ParseShardResults(bad_shard, &out).ok);
  // Content after 'end'.
  EXPECT_FALSE(ParseShardResults(good + "result unit=1 skipped=0 usable=0\n", &out).ok);
}

TEST(SweepCheckpointSerdeTest, RoundTripIsIdentity) {
  SweepCheckpoint checkpoint;
  checkpoint.plan_fingerprint = 13678292389700777394ull;
  SweepUnitResult r;
  r.unit_id = 0;
  r.usable = true;
  r.metric = 0.83769326123830135;
  checkpoint.results.push_back(r);
  r = SweepUnitResult{};
  r.unit_id = 7;
  r.skipped = true;
  checkpoint.results.push_back(r);
  r = SweepUnitResult{};
  r.unit_id = 3;  // out of id order on purpose: checkpoints record merge order
  checkpoint.results.push_back(r);

  const std::string text = SerializeSweepCheckpoint(checkpoint);
  SweepCheckpoint parsed;
  const serde::Status s = ParseSweepCheckpoint(text, &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, checkpoint);
  EXPECT_EQ(SerializeSweepCheckpoint(parsed), text);  // byte-stable
}

TEST(SweepCheckpointSerdeTest, EmptyCheckpointRoundTrips) {
  // A dispatch checkpointed before any result merged: legal, resumes to nothing.
  SweepCheckpoint checkpoint;
  checkpoint.plan_fingerprint = 1;
  SweepCheckpoint parsed;
  ASSERT_TRUE(
      ParseSweepCheckpoint(SerializeSweepCheckpoint(checkpoint), &parsed).ok);
  EXPECT_EQ(parsed, checkpoint);
}

TEST(SweepCheckpointSerdeTest, CorruptAndTruncatedFilesAreStatusErrors) {
  // Resume must never silently restart from zero: every corruption shape a killed
  // box can leave behind (or an operator can cause) is a loud parse error.
  SweepCheckpoint checkpoint;
  checkpoint.plan_fingerprint = 42;
  checkpoint.results.push_back(SweepUnitResult{.unit_id = 0});
  checkpoint.results.push_back(SweepUnitResult{.unit_id = 1});
  const std::string good = SerializeSweepCheckpoint(checkpoint);

  SweepCheckpoint out;
  EXPECT_FALSE(ParseSweepCheckpoint("", &out).ok) << "empty file";
  // Truncated mid-write: no 'end' marker.
  const serde::Status truncated =
      ParseSweepCheckpoint(good.substr(0, good.size() - 4), &out);
  EXPECT_FALSE(truncated.ok);
  EXPECT_NE(truncated.message.find("truncated"), std::string::npos);
  // Truncated harder: a result line lost too.
  EXPECT_FALSE(
      ParseSweepCheckpoint(good.substr(0, good.rfind("result")), &out).ok);
  // Header count disagrees with the body.
  std::string wrong_count = good;
  wrong_count.replace(wrong_count.find("units=2"), 7, "units=3");
  EXPECT_FALSE(ParseSweepCheckpoint(wrong_count, &out).ok);
  // Garbage appended after 'end'.
  EXPECT_FALSE(
      ParseSweepCheckpoint(good + "result unit=9 skipped=0 usable=0\n", &out).ok);
  // Wrong version.
  std::string wrong_version = good;
  wrong_version.replace(wrong_version.find("v=1"), 3, "v=9");
  EXPECT_FALSE(ParseSweepCheckpoint(wrong_version, &out).ok);
  // A corrupted result line (bit-rot inside the body).
  std::string corrupt = good;
  corrupt.replace(corrupt.find("unit=1"), 6, "unit=x");
  EXPECT_FALSE(ParseSweepCheckpoint(corrupt, &out).ok);
  // Not a checkpoint at all.
  EXPECT_FALSE(ParseSweepCheckpoint("shard-results v=1\nend\n", &out).ok);
}

TEST(ProfileSnapshotSerdeTest, RoundTripFromARealConfigSpace) {
  ExperimentOptions options;
  options.num_inputs = 10;
  options.seed = 3;
  const Experiment experiment(TaskId::kImageClassification, PlatformId::kCpu1,
                              ContentionType::kNone, options);
  const ProfileSnapshot snapshot =
      CaptureProfileSnapshot(experiment.stack(DnnSetChoice::kBoth).space());
  ASSERT_GT(snapshot.num_models, 0);
  ASSERT_GT(snapshot.num_powers, 0);
  ASSERT_EQ(snapshot.profile_latency.size(),
            static_cast<size_t>(snapshot.num_models * snapshot.num_powers));

  const std::string text = SerializeProfileSnapshot(snapshot);
  ProfileSnapshot parsed;
  const serde::Status s = ParseProfileSnapshot(text, &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, snapshot);
  EXPECT_EQ(SerializeProfileSnapshot(parsed), text);
}

TEST(ProfileSnapshotSerdeTest, MissingCellsAndDuplicatesAreStatusErrors) {
  ProfileSnapshot snapshot;
  snapshot.num_models = 1;
  snapshot.num_powers = 1;
  snapshot.caps = {10.0};
  snapshot.candidates = {Candidate{.model_index = 0, .stage_limit = -1}};
  snapshot.candidate_accuracy = {0.9};
  snapshot.profile_latency = {0.01};
  snapshot.inference_power = {8.0};
  const std::string good = SerializeProfileSnapshot(snapshot);
  ProfileSnapshot out;
  ASSERT_TRUE(ParseProfileSnapshot(good, &out).ok);

  // Drop the profile line: the parser reports the missing cell.
  std::string missing = good;
  const size_t at = missing.find("profile ");
  missing.erase(at, missing.find('\n', at) - at + 1);
  const serde::Status s = ParseProfileSnapshot(missing, &out);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("missing profile"), std::string::npos);

  // Duplicate the cap line: rejected.
  std::string dup = good;
  const size_t cap_at = dup.find("cap ");
  const std::string cap_line = dup.substr(cap_at, dup.find('\n', cap_at) - cap_at + 1);
  dup.insert(cap_at, cap_line);
  EXPECT_FALSE(ParseProfileSnapshot(dup, &out).ok);
}

TEST(ProfileSnapshotSerdeTest, ImplausibleHeaderCountsAreStatusErrorsNotBadAlloc) {
  ProfileSnapshot out;
  const serde::Status s = ParseProfileSnapshot(
      "profile-snapshot v=1 models=2000000000 powers=2000000000 candidates=1\nend\n",
      &out);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("implausibly large"), std::string::npos);
}

}  // namespace
}  // namespace alert
