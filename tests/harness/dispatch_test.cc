// Dispatcher correctness under failure: the merged aggregate must be byte-identical
// to the monolithic sweep for any worker count, kill schedule, silent straggler, or
// duplicate delivery — and a completed unit id must never be re-assigned.  Also
// covers the incremental merge accumulator and the warm-start (never re-profile)
// snapshot path the dispatcher ships to workers.
#include "src/harness/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/harness/sweep_io.h"
#include "src/harness/sweep_plan.h"
#include "src/harness/sweep_runner.h"

namespace alert {
namespace {

// Small but representative: two schemes and the 0.4x-deadline column (grid index 0,
// statically infeasible), so skipped settings flow through the wire protocol too.
SweepSpec ToySpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kNoCoord};
  spec.seeds = {1};
  spec.num_inputs = 30;
  spec.grid_indices = {0, 7, 14, 21, 28, 35};
  return spec;
}

class DispatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    plan_ = new SweepPlan(BuildSweepPlan(ToySpec()));
    SweepRunOptions run;
    run.threads = 2;
    monolithic_csv_ =
        new std::string(SweepAggregateCsv(*plan_, RunSweep(*plan_, run)));
  }
  static void TearDownTestSuite() {
    delete plan_;
    delete monolithic_csv_;
    plan_ = nullptr;
    monolithic_csv_ = nullptr;
  }

  // Wires the no-rerun invariant into a DispatchOptions: every id in every
  // assignment must not already have a merged result.
  struct NoRerunChecker {
    std::set<int> recorded;
    void Attach(DispatchOptions& options) {
      options.on_result = [this](int, const SweepUnitResult& result, bool newly) {
        if (newly) {
          recorded.insert(result.unit_id);
        }
      };
      options.on_assign = [this](int worker, int seq, std::span<const int> ids) {
        for (const int id : ids) {
          EXPECT_EQ(recorded.count(id), 0u)
              << "unit " << id << " reassigned (worker " << worker << ", seq " << seq
              << ") after its result was already merged";
        }
      };
    }
  };

  // Runs a dispatch over the shared plan and returns (status, csv, stats).
  static serde::Status Dispatch(Transport& transport, DispatchOptions options,
                                std::string* csv, DispatchStats* stats) {
    NoRerunChecker checker;
    checker.Attach(options);
    std::vector<CellResult> cells;
    const serde::Status s = DispatchSweep(*plan_, transport, options, &cells, stats);
    if (s.ok) {
      *csv = SweepAggregateCsv(*plan_, cells);
    }
    return s;
  }

  static SweepPlan* plan_;
  static std::string* monolithic_csv_;
};

SweepPlan* DispatchTest::plan_ = nullptr;
std::string* DispatchTest::monolithic_csv_ = nullptr;

// --- incremental merge accumulator -------------------------------------------------

TEST_F(DispatchTest, AccumulatorMergesOutOfOrderIdenticallyToBatchMerge) {
  const std::vector<SweepUnitResult> results = RunSweepUnits(*plan_, plan_->units);

  std::vector<SweepUnitResult> shuffled = results;
  std::mt19937 rng(1234);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  SweepMergeAccumulator accumulator(*plan_);
  EXPECT_FALSE(accumulator.complete());
  EXPECT_EQ(accumulator.num_expected(), plan_->units.size());
  for (const SweepUnitResult& result : shuffled) {
    bool newly = false;
    const serde::Status s = accumulator.Add(result, &newly);
    ASSERT_TRUE(s.ok) << s.message;
    EXPECT_TRUE(newly);
  }
  EXPECT_TRUE(accumulator.complete());
  EXPECT_TRUE(accumulator.MissingUnitIds().empty());

  std::vector<CellResult> incremental;
  ASSERT_TRUE(accumulator.Finalize(&incremental).ok);
  EXPECT_EQ(SweepAggregateCsv(*plan_, incremental), *monolithic_csv_);
}

TEST_F(DispatchTest, AccumulatorIsFirstWinsAndRejectsConflicts) {
  const std::vector<SweepUnitResult> results = RunSweepUnits(*plan_, plan_->units);
  SweepMergeAccumulator accumulator(*plan_);
  bool newly = false;
  ASSERT_TRUE(accumulator.Add(results[0], &newly).ok);
  EXPECT_TRUE(newly);

  // Identical redelivery: accepted, not recorded again.
  ASSERT_TRUE(accumulator.Add(results[0], &newly).ok);
  EXPECT_FALSE(newly);
  EXPECT_EQ(accumulator.num_recorded(), 1u);

  // Conflicting redelivery: a determinism violation, reported as an error.
  SweepUnitResult conflicting = results[0];
  conflicting.metric += 1.0;
  conflicting.usable = true;
  conflicting.skipped = false;
  const serde::Status conflict = accumulator.Add(conflicting, &newly);
  EXPECT_FALSE(conflict.ok);
  EXPECT_NE(conflict.message.find("conflicting"), std::string::npos);

  // Unknown ids are errors; missing units are reported by id.
  SweepUnitResult unknown;
  unknown.unit_id = static_cast<int>(plan_->units.size());
  EXPECT_FALSE(accumulator.Add(unknown, &newly).ok);
  std::vector<CellResult> cells;
  const serde::Status incomplete = accumulator.Finalize(&cells);
  EXPECT_FALSE(incomplete.ok);
  EXPECT_NE(incomplete.message.find("missing"), std::string::npos);
  EXPECT_EQ(accumulator.MissingUnitIds().size(), plan_->units.size() - 1);
  EXPECT_TRUE(accumulator.IsRecorded(results[0].unit_id));
}

// --- warm-start profile snapshots --------------------------------------------------

TEST_F(DispatchTest, WarmStartSnapshotsNeverChangeResults) {
  const ProfileSnapshotStore store = CapturePlanSnapshots(*plan_);
  // One (task, platform, seed) triple in the toy plan, three candidate-set stacks.
  EXPECT_EQ(store.size(), 3u);

  SweepRunOptions warm;
  warm.warm_start = &store;
  const std::vector<SweepUnitResult> with_snapshots =
      RunSweepUnits(*plan_, plan_->units, warm);
  const std::vector<SweepUnitResult> without = RunSweepUnits(*plan_, plan_->units);
  EXPECT_EQ(with_snapshots, without);
}

TEST_F(DispatchTest, WarmStartedExperimentReproducesTheSnapshotExactly) {
  const ProfileSnapshotStore store = CapturePlanSnapshots(*plan_);
  const SweepCellSpec& cell = plan_->spec.cells.front();
  ExperimentOptions options;
  options.num_inputs = plan_->spec.num_inputs;
  options.seed = plan_->spec.seeds.front();
  const Experiment experiment(cell.task, cell.platform, cell.contention, options,
                              &store);
  for (const DnnSetChoice choice :
       {DnnSetChoice::kTraditionalOnly, DnnSetChoice::kAnytimeOnly,
        DnnSetChoice::kBoth}) {
    const ProfileSnapshot* shipped =
        store.Find(cell.task, cell.platform, options.seed, choice);
    ASSERT_NE(shipped, nullptr);
    EXPECT_EQ(CaptureProfileSnapshot(experiment.stack(choice).space()), *shipped);
  }
}

// --- dispatch equivalence ----------------------------------------------------------

TEST_F(DispatchTest, InProcessDispatchMatchesMonolithicForAnyWorkerCount) {
  for (const int workers : {1, 2, 5}) {
    for (const ShardStrategy strategy :
         {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
      InProcessTransport transport;
      DispatchOptions options;
      options.num_workers = workers;
      options.strategy = strategy;
      std::string csv;
      DispatchStats stats;
      const serde::Status s = Dispatch(transport, options, &csv, &stats);
      ASSERT_TRUE(s.ok) << s.message;
      EXPECT_EQ(csv, *monolithic_csv_)
          << "workers=" << workers
          << " strategy=" << ShardStrategyName(strategy);
      EXPECT_EQ(stats.workers_launched, workers);
      EXPECT_EQ(stats.worker_failures, 0);
    }
  }
}

TEST_F(DispatchTest, WorkerDyingMidShardIsRetriedWithoutRerunningCompletedUnits) {
  InProcessTransport::Options in_options;
  in_options.fail_after = {{0, 2}};  // worker 0 dies after reporting two units
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.worker_failures, 1);
  EXPECT_GE(stats.retry_assignments, 1);
}

TEST_F(DispatchTest, SilentWorkerTripsTheDeadlineAndItsUnitsAreRepartitioned) {
  InProcessTransport::Options in_options;
  in_options.hang_after = {{0, 0}};  // worker 0 never reports anything
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  options.straggler_deadline_ms = 200;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.stragglers, 1);
  EXPECT_GE(stats.retry_assignments, 1);
  EXPECT_EQ(stats.worker_failures, 0);  // silence is not a crash
}

TEST_F(DispatchTest, DuplicateDeliveryIsDedupedFirstWins) {
  InProcessTransport::Options in_options;
  in_options.duplicate_results = {0, 1};  // both workers double-send everything
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  // Every unit is redelivered once; the dispatcher stops reading the moment the
  // accumulator completes, so the very last duplicate may go unread.
  EXPECT_GE(stats.duplicate_results, static_cast<int>(plan_->units.size()) - 1);
  EXPECT_GE(stats.results_received, 2 * static_cast<int>(plan_->units.size()) - 1);
}

TEST_F(DispatchTest, RandomizedKillSchedulesAlwaysMergeByteIdentically) {
  for (const uint32_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937 rng(seed);
    InProcessTransport::Options in_options;
    const int workers = 3;
    for (int w = 0; w < workers; ++w) {
      // Each initial worker independently: die after 1..5 results, go quiet, or
      // behave; every replacement (fresh launch index) comes up clean.
      const int roll = static_cast<int>(rng() % 4);
      if (roll == 0) {
        in_options.hang_after[w] = static_cast<int>(rng() % 3);
      } else if (roll < 3) {
        in_options.fail_after[w] = 1 + static_cast<int>(rng() % 5);
      }
      if (rng() % 2 == 0) {
        in_options.duplicate_results.insert(w);
      }
    }
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = workers;
    options.straggler_deadline_ms = 200;
    options.max_worker_launches = 32;
    std::string csv;
    DispatchStats stats;
    const serde::Status s = Dispatch(transport, options, &csv, &stats);
    ASSERT_TRUE(s.ok) << "seed=" << seed << ": " << s.message;
    EXPECT_EQ(csv, *monolithic_csv_) << "seed=" << seed;
  }
}

// --- transport failure handling ----------------------------------------------------

// Fails the first N launches, then delegates to a real in-process transport.
class FlakyLaunchTransport : public Transport {
 public:
  explicit FlakyLaunchTransport(int failures) : failures_(failures) {}
  serde::Status Launch(int worker_index, std::unique_ptr<WorkerChannel>* out) override {
    if (failures_-- > 0) {
      return serde::Error("injected launch failure");
    }
    return inner_.Launch(worker_index, out);
  }

 private:
  int failures_;
  InProcessTransport inner_;
};

TEST_F(DispatchTest, FailedLaunchesAreRetriedAgainstTheBudget) {
  FlakyLaunchTransport transport(2);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_EQ(stats.failed_launches, 2);
  EXPECT_EQ(stats.workers_launched, 2);
}

// A channel whose worker is dead on arrival: sends succeed into the void, reads see
// an immediately-closed stream.
class DeadChannel : public WorkerChannel {
 public:
  serde::Status Send(std::string_view) override { return serde::Ok(); }
  ChannelRead Recv(int, std::string*) override { return ChannelRead::kClosed; }
  void Close() override {}
};

class DeadWorkerTransport : public Transport {
 public:
  serde::Status Launch(int, std::unique_ptr<WorkerChannel>* out) override {
    *out = std::make_unique<DeadChannel>();
    return serde::Ok();
  }
};

TEST_F(DispatchTest, ExhaustedLaunchBudgetIsAnErrorNotAHang) {
  DeadWorkerTransport transport;
  DispatchOptions options;
  options.num_workers = 2;
  options.max_worker_launches = 5;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("launch budget"), std::string::npos);
  EXPECT_EQ(stats.workers_launched, 5);
}

// --- worker-side protocol validation -----------------------------------------------

// A scripted link: the worker reads the canned lines, writes into `sent`.
class ScriptedLink : public WorkerLink {
 public:
  explicit ScriptedLink(std::vector<std::string> lines) : lines_(std::move(lines)) {}
  bool ReadLine(std::string* line) override {
    if (next_ >= lines_.size()) {
      return false;
    }
    *line = lines_[next_++];
    return true;
  }
  serde::Status WriteLine(std::string_view line) override {
    sent.emplace_back(line);
    return serde::Ok();
  }
  std::vector<std::string> sent;

 private:
  std::vector<std::string> lines_;
  size_t next_ = 0;
};

TEST_F(DispatchTest, WorkerRejectsAPlanFingerprintMismatch) {
  // A syntactically valid assignment whose claimed fingerprint does not match what
  // the spec builds: the worker must refuse (unit ids would be meaningless) and
  // report a worker-error instead of returning mis-numbered results.
  AssignHeader header;
  header.seq = 0;
  header.plan_fingerprint = PlanFingerprint(*plan_) + 1;
  header.num_units = 1;
  header.num_snapshots = 0;
  std::vector<std::string> lines = {SerializeAssignHeader(header)};
  const std::string spec_text = SerializeSweepSpec(plan_->spec);
  size_t pos = 0;
  while (pos < spec_text.size()) {
    const size_t nl = spec_text.find('\n', pos);
    lines.emplace_back(spec_text, pos, nl - pos);
    pos = nl + 1;
  }
  for (std::string& id_line : SerializeUnitIdLines(std::vector<int>{0})) {
    lines.push_back(std::move(id_line));
  }
  lines.push_back(SerializeAssignEnd(0));

  ScriptedLink link(lines);
  EXPECT_EQ(RunDispatchWorker(link), 4);
  ASSERT_FALSE(link.sent.empty());
  WorkerMessage last;
  ASSERT_TRUE(ParseWorkerMessage(link.sent.back(), &last).ok);
  EXPECT_EQ(last.kind, WorkerMessage::Kind::kError);
  EXPECT_NE(last.reason.find("fingerprint"), std::string::npos);
}

TEST_F(DispatchTest, WorkerExitsCleanlyOnShutdownAndOnEof) {
  ScriptedLink shutdown_link({std::string(kShutdownLine)});
  EXPECT_EQ(RunDispatchWorker(shutdown_link), 0);

  ScriptedLink eof_link({});
  EXPECT_EQ(RunDispatchWorker(eof_link), 0);
  // Both said hello before exiting.
  WorkerMessage hello;
  ASSERT_TRUE(ParseWorkerMessage(eof_link.sent.front(), &hello).ok);
  EXPECT_EQ(hello.kind, WorkerMessage::Kind::kHello);
}

}  // namespace
}  // namespace alert
