// Dispatcher correctness under failure: the merged aggregate must be byte-identical
// to the monolithic sweep for any worker count, lease mode, kill schedule, silent
// straggler, lease revocation, steal order, or duplicate delivery — and a completed
// unit id must never be re-leased.  Also covers the cost model and cost-scaled
// straggler deadline, the pull pool's makespan win over static shards on a skewed
// fleet, the incremental merge accumulator, and the warm-start (never re-profile)
// snapshot path the dispatcher ships to workers.
#include "src/harness/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <limits>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/harness/sweep_io.h"
#include "src/harness/sweep_plan.h"
#include "src/harness/sweep_runner.h"

namespace alert {
namespace {

// Small but representative: two schemes and the 0.4x-deadline column (grid index 0,
// statically infeasible), so skipped settings flow through the wire protocol too.
SweepSpec ToySpec() {
  SweepSpec spec;
  spec.cells.push_back(SweepCellSpec{TaskId::kImageClassification, PlatformId::kCpu1,
                                     ContentionType::kNone, GoalMode::kMinimizeEnergy});
  spec.schemes = {SchemeId::kAlert, SchemeId::kNoCoord};
  spec.seeds = {1};
  spec.num_inputs = 30;
  spec.grid_indices = {0, 7, 14, 21, 28, 35};
  return spec;
}

class DispatchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    plan_ = new SweepPlan(BuildSweepPlan(ToySpec()));
    SweepRunOptions run;
    run.threads = 2;
    monolithic_csv_ =
        new std::string(SweepAggregateCsv(*plan_, RunSweep(*plan_, run)));
  }
  static void TearDownTestSuite() {
    delete plan_;
    delete monolithic_csv_;
    plan_ = nullptr;
    monolithic_csv_ = nullptr;
  }

  // Wires the no-rerun invariant into a DispatchOptions: every id in every
  // assignment must not already have a merged result.
  struct NoRerunChecker {
    std::set<int> recorded;
    void Attach(DispatchOptions& options) {
      options.on_result = [this](int, const SweepUnitResult& result, bool newly) {
        if (newly) {
          recorded.insert(result.unit_id);
        }
      };
      options.on_assign = [this](int worker, int seq, std::span<const int> ids) {
        for (const int id : ids) {
          EXPECT_EQ(recorded.count(id), 0u)
              << "unit " << id << " reassigned (worker " << worker << ", seq " << seq
              << ") after its result was already merged";
        }
      };
    }
  };

  // Runs a dispatch over the shared plan and returns (status, csv, stats).
  static serde::Status Dispatch(Transport& transport, DispatchOptions options,
                                std::string* csv, DispatchStats* stats) {
    NoRerunChecker checker;
    checker.Attach(options);
    std::vector<CellResult> cells;
    const serde::Status s = DispatchSweep(*plan_, transport, options, &cells, stats);
    if (s.ok) {
      *csv = SweepAggregateCsv(*plan_, cells);
    }
    return s;
  }

  static SweepPlan* plan_;
  static std::string* monolithic_csv_;
};

SweepPlan* DispatchTest::plan_ = nullptr;
std::string* DispatchTest::monolithic_csv_ = nullptr;

// --- incremental merge accumulator -------------------------------------------------

TEST_F(DispatchTest, AccumulatorMergesOutOfOrderIdenticallyToBatchMerge) {
  const std::vector<SweepUnitResult> results = RunSweepUnits(*plan_, plan_->units);

  std::vector<SweepUnitResult> shuffled = results;
  std::mt19937 rng(1234);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  SweepMergeAccumulator accumulator(*plan_);
  EXPECT_FALSE(accumulator.complete());
  EXPECT_EQ(accumulator.num_expected(), plan_->units.size());
  for (const SweepUnitResult& result : shuffled) {
    bool newly = false;
    const serde::Status s = accumulator.Add(result, &newly);
    ASSERT_TRUE(s.ok) << s.message;
    EXPECT_TRUE(newly);
  }
  EXPECT_TRUE(accumulator.complete());
  EXPECT_TRUE(accumulator.MissingUnitIds().empty());

  std::vector<CellResult> incremental;
  ASSERT_TRUE(accumulator.Finalize(&incremental).ok);
  EXPECT_EQ(SweepAggregateCsv(*plan_, incremental), *monolithic_csv_);
}

TEST_F(DispatchTest, AccumulatorIsFirstWinsAndRejectsConflicts) {
  const std::vector<SweepUnitResult> results = RunSweepUnits(*plan_, plan_->units);
  SweepMergeAccumulator accumulator(*plan_);
  bool newly = false;
  ASSERT_TRUE(accumulator.Add(results[0], &newly).ok);
  EXPECT_TRUE(newly);

  // Identical redelivery: accepted, not recorded again.
  ASSERT_TRUE(accumulator.Add(results[0], &newly).ok);
  EXPECT_FALSE(newly);
  EXPECT_EQ(accumulator.num_recorded(), 1u);

  // Conflicting redelivery: a determinism violation, reported as an error.
  SweepUnitResult conflicting = results[0];
  conflicting.metric += 1.0;
  conflicting.usable = true;
  conflicting.skipped = false;
  const serde::Status conflict = accumulator.Add(conflicting, &newly);
  EXPECT_FALSE(conflict.ok);
  EXPECT_NE(conflict.message.find("conflicting"), std::string::npos);

  // Unknown ids are errors; missing units are reported by id.
  SweepUnitResult unknown;
  unknown.unit_id = static_cast<int>(plan_->units.size());
  EXPECT_FALSE(accumulator.Add(unknown, &newly).ok);
  std::vector<CellResult> cells;
  const serde::Status incomplete = accumulator.Finalize(&cells);
  EXPECT_FALSE(incomplete.ok);
  EXPECT_NE(incomplete.message.find("missing"), std::string::npos);
  EXPECT_EQ(accumulator.MissingUnitIds().size(), plan_->units.size() - 1);
  EXPECT_TRUE(accumulator.IsRecorded(results[0].unit_id));
}

// --- warm-start profile snapshots --------------------------------------------------

TEST_F(DispatchTest, WarmStartSnapshotsNeverChangeResults) {
  const ProfileSnapshotStore store = CapturePlanSnapshots(*plan_);
  // One (task, platform, seed) triple in the toy plan, three candidate-set stacks.
  EXPECT_EQ(store.size(), 3u);

  SweepRunOptions warm;
  warm.warm_start = &store;
  const std::vector<SweepUnitResult> with_snapshots =
      RunSweepUnits(*plan_, plan_->units, warm);
  const std::vector<SweepUnitResult> without = RunSweepUnits(*plan_, plan_->units);
  EXPECT_EQ(with_snapshots, without);
}

TEST_F(DispatchTest, WarmStartedExperimentReproducesTheSnapshotExactly) {
  const ProfileSnapshotStore store = CapturePlanSnapshots(*plan_);
  const SweepCellSpec& cell = plan_->spec.cells.front();
  ExperimentOptions options;
  options.num_inputs = plan_->spec.num_inputs;
  options.seed = plan_->spec.seeds.front();
  const Experiment experiment(cell.task, cell.platform, cell.contention, options,
                              &store);
  for (const DnnSetChoice choice :
       {DnnSetChoice::kTraditionalOnly, DnnSetChoice::kAnytimeOnly,
        DnnSetChoice::kBoth}) {
    const ProfileSnapshot* shipped =
        store.Find(cell.task, cell.platform, options.seed, choice);
    ASSERT_NE(shipped, nullptr);
    EXPECT_EQ(CaptureProfileSnapshot(experiment.stack(choice).space()), *shipped);
  }
}

// --- dispatch equivalence ----------------------------------------------------------

TEST_F(DispatchTest, InProcessDispatchMatchesMonolithicForAnyWorkerCount) {
  for (const int workers : {1, 2, 5}) {
    for (const LeaseMode mode : {LeaseMode::kPull, LeaseMode::kStatic}) {
      for (const ShardStrategy strategy :
           {ShardStrategy::kRoundRobin, ShardStrategy::kCostWeighted}) {
        InProcessTransport transport;
        DispatchOptions options;
        options.num_workers = workers;
        options.lease_mode = mode;
        options.strategy = strategy;
        std::string csv;
        DispatchStats stats;
        const serde::Status s = Dispatch(transport, options, &csv, &stats);
        ASSERT_TRUE(s.ok) << s.message;
        EXPECT_EQ(csv, *monolithic_csv_)
            << "workers=" << workers << " mode=" << static_cast<int>(mode)
            << " strategy=" << ShardStrategyName(strategy);
        EXPECT_EQ(stats.workers_launched, workers);
        EXPECT_EQ(stats.worker_failures, 0);
        EXPECT_GE(stats.leases_granted, mode == LeaseMode::kPull ? workers : 1);
      }
    }
  }
}

TEST_F(DispatchTest, WorkerDyingMidShardIsRetriedWithoutRerunningCompletedUnits) {
  InProcessTransport::Options in_options;
  // Worker 0 dies after its first result — mid-lease (cold leases hold two units),
  // so the dispatcher must requeue the undelivered remainder.
  in_options.fail_after = {{0, 1}};
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.worker_failures, 1);
  EXPECT_GE(stats.retry_assignments, 1);
}

TEST_F(DispatchTest, SilentWorkerTripsTheDeadlineAndItsUnitsAreRepartitioned) {
  InProcessTransport::Options in_options;
  in_options.hang_after = {{0, 0}};  // worker 0 never reports anything
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  options.straggler_deadline_ms = 200;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.stragglers, 1);
  EXPECT_GE(stats.retry_assignments, 1);
  EXPECT_EQ(stats.worker_failures, 0);  // silence is not a crash
}

TEST_F(DispatchTest, DuplicateDeliveryIsDedupedFirstWins) {
  InProcessTransport::Options in_options;
  in_options.duplicate_results = {0, 1};  // both workers double-send everything
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  // Every unit is redelivered once; the dispatcher stops reading the moment the
  // accumulator completes, so the very last duplicate may go unread.
  EXPECT_GE(stats.duplicate_results, static_cast<int>(plan_->units.size()) - 1);
  EXPECT_GE(stats.results_received, 2 * static_cast<int>(plan_->units.size()) - 1);
}

TEST_F(DispatchTest, RandomizedKillSchedulesAlwaysMergeByteIdentically) {
  for (const uint32_t seed : {1u, 2u, 3u, 4u}) {
    std::mt19937 rng(seed);
    InProcessTransport::Options in_options;
    const int workers = 3;
    for (int w = 0; w < workers; ++w) {
      // Each initial worker independently: die after 1..5 results, go quiet, or
      // behave; every replacement (fresh launch index) comes up clean.
      const int roll = static_cast<int>(rng() % 4);
      if (roll == 0) {
        in_options.hang_after[w] = static_cast<int>(rng() % 3);
      } else if (roll < 3) {
        in_options.fail_after[w] = 1 + static_cast<int>(rng() % 5);
      }
      if (rng() % 2 == 0) {
        in_options.duplicate_results.insert(w);
      }
    }
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = workers;
    options.straggler_deadline_ms = 200;
    options.max_worker_launches = 32;
    std::string csv;
    DispatchStats stats;
    const serde::Status s = Dispatch(transport, options, &csv, &stats);
    ASSERT_TRUE(s.ok) << "seed=" << seed << ": " << s.message;
    EXPECT_EQ(csv, *monolithic_csv_) << "seed=" << seed;
  }
}

// --- lease economics: cost model, sizing, stealing, deadlines ----------------------

TEST(LeaseCostModelTest, LearnsAnEwmaRateAndIgnoresGarbageObservations) {
  LeaseCostModel model;
  EXPECT_FALSE(model.seeded());
  EXPECT_EQ(model.PredictMs(0, 10.0), 0.0);

  model.Observe(0, 2.0, 10.0);  // 5 ms per cost point; first sample adopted whole
  EXPECT_TRUE(model.seeded());
  EXPECT_DOUBLE_EQ(model.rate_ms(), 5.0);
  EXPECT_DOUBLE_EQ(model.PredictMs(0, 4.0), 20.0);

  model.Observe(0, 1.0, 10.0);  // a 10 ms/point sample, blended at alpha 0.3
  EXPECT_NEAR(model.rate_ms(), 0.7 * 5.0 + 0.3 * 10.0, 1e-12);
  EXPECT_NEAR(model.RateFor(0), 0.7 * 5.0 + 0.3 * 10.0, 1e-12);

  const double before = model.rate_ms();
  model.Observe(0, 0.0, 10.0);                                      // zero cost
  model.Observe(0, -1.0, 10.0);                                     // negative cost
  model.Observe(0, 2.0, 0.0);                                       // zero ms
  model.Observe(0, 2.0, std::numeric_limits<double>::quiet_NaN());  // NaN ms
  model.Observe(0, std::numeric_limits<double>::infinity(), 5.0);   // infinite cost
  EXPECT_DOUBLE_EQ(model.rate_ms(), before);
  EXPECT_EQ(model.PredictMs(0, -3.0), 0.0);  // nonsense cost predicts nothing
  EXPECT_TRUE(model.worker_rates().count(0));
  EXPECT_FALSE(model.worker_rates().count(7));  // garbage never seeded a worker
}

TEST(LeaseCostModelTest, SeededModelPredictsBeforeAnyObservation) {
  const LeaseCostModel model(3.0);
  EXPECT_TRUE(model.seeded());
  EXPECT_DOUBLE_EQ(model.PredictMs(0, 2.0), 6.0);
  const LeaseCostModel unseedable(-1.0);  // garbage seed = start unknown
  EXPECT_FALSE(unseedable.seeded());
}

TEST(LeaseCostModelTest, PerWorkerRatesDivergeAndColdWorkersUseTheFleetPrior) {
  LeaseCostModel model;
  // Worker 0 is fast (2 ms/point), worker 1 an order of magnitude slower.
  model.Observe(0, 1.0, 2.0);
  model.Observe(1, 1.0, 20.0);
  EXPECT_TRUE(model.worker_seeded(0));
  EXPECT_TRUE(model.worker_seeded(1));
  EXPECT_DOUBLE_EQ(model.RateFor(0), 2.0);
  EXPECT_DOUBLE_EQ(model.RateFor(1), 20.0);
  EXPECT_DOUBLE_EQ(model.PredictMs(0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(model.PredictMs(1, 3.0), 60.0);

  // A cold worker (no observations yet) predicts at the fleet prior — which has
  // blended both machines, so it sits strictly between them.
  EXPECT_FALSE(model.worker_seeded(2));
  const double fleet = model.RateFor(2);
  EXPECT_DOUBLE_EQ(fleet, model.rate_ms());
  EXPECT_GT(fleet, model.RateFor(0));
  EXPECT_LT(fleet, model.RateFor(1));

  // One worker's samples never contaminate another's learned rate.
  model.Observe(0, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(model.RateFor(1), 20.0);
}

TEST(PullLeaseWantsMoreTest, MaxUnitsClampBindsEvenWhenPredictionsStayZero) {
  // The satellite-2 regression: units with SweepUnitCost == 0 predict 0 ms at any
  // rate, so the "predicted time < target" branch alone would swallow an unbounded
  // plan prefix.  The clamp must bind in every branch.
  constexpr int kMax = 64;
  constexpr int kColdCap = 2;
  // Zero-cost units with a known rate: predicted_ms stays 0 forever, yet the lease
  // must stop at exactly the cap.
  for (int taken = 0; taken < kMax; ++taken) {
    EXPECT_TRUE(PullLeaseWantsMore(taken, kMax, kColdCap, /*rate_known=*/true,
                                   /*predicted_ms=*/0.0, /*target_ms=*/1000))
        << "taken=" << taken;
  }
  EXPECT_FALSE(PullLeaseWantsMore(kMax, kMax, kColdCap, true, 0.0, 1000));
  EXPECT_FALSE(PullLeaseWantsMore(kMax + 1, kMax, kColdCap, true, 0.0, 1000));
  // Cold start: the cold cap binds, and the max-units clamp still dominates it.
  EXPECT_TRUE(PullLeaseWantsMore(1, kMax, kColdCap, false, 0.0, 1000));
  EXPECT_FALSE(PullLeaseWantsMore(kColdCap, kMax, kColdCap, false, 0.0, 1000));
  EXPECT_FALSE(PullLeaseWantsMore(5, 5, /*cold_cap=*/100, false, 0.0, 1000));
  // An empty lease always takes its first unit, even one predicted over target.
  EXPECT_TRUE(PullLeaseWantsMore(0, kMax, kColdCap, true, 5000.0, 1000));
  // Known rate: stop once the prediction crosses the target.
  EXPECT_TRUE(PullLeaseWantsMore(3, kMax, kColdCap, true, 999.0, 1000));
  EXPECT_FALSE(PullLeaseWantsMore(3, kMax, kColdCap, true, 1000.0, 1000));
}

TEST(EffectiveLeaseDeadlineTest, StretchesForLongUnitsAndFallsBackToFlat) {
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 4.0, 0.0), 100);     // model unknown
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 0.0, 500.0), 100);   // scaling disabled
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, -2.0, 500.0), 100);  // scaling disabled
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 4.0, 10.0), 100);    // flat dominates
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 4.0, 500.0), 2000);  // stretched
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 4.0, 25.1), 101);    // ceil, not trunc
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 1e12, 1e12), INT_MAX);  // clamped
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, 4.0, nan), 100);
  EXPECT_EQ(EffectiveLeaseDeadlineMs(100, nan, 500.0), 100);
}

TEST_F(DispatchTest, PullLeasesBeatStaticShardsOnASkewedFleet) {
  // Worker 0 simulates a machine ~an order of magnitude slower than worker 1.
  // Static LPT cannot know that — it splits cost evenly and the slow worker grinds
  // through half the plan.  The pull pool only ever exposes the slow worker to
  // small leases, and the fast worker drains the rest.  This is the tentpole's
  // makespan claim, asserted with a wide margin so CI noise cannot flake it.
  constexpr int kDelayMs = 80;
  const auto run = [&](LeaseMode mode, DispatchStats* stats) {
    InProcessTransport::Options in_options;
    in_options.delay_per_result = {{0, kDelayMs}};
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = 2;
    options.lease_mode = mode;
    options.strategy = ShardStrategy::kCostWeighted;  // static = the LPT baseline
    std::string csv;
    const serde::Status s = Dispatch(transport, options, &csv, stats);
    ASSERT_TRUE(s.ok) << s.message;
    EXPECT_EQ(csv, *monolithic_csv_);
  };
  DispatchStats pull;
  DispatchStats lpt;
  run(LeaseMode::kPull, &pull);
  run(LeaseMode::kStatic, &lpt);
  // Static: the slow worker sleeps through ~half the plan's cost (>= 8 units x
  // 80 ms).  Pull: it only ever holds its small warm-up lease(s).  The margin was
  // 0.75 when lease sizing used one fleet-wide rate; per-worker rates keep the slow
  // machine's leases proportionally smaller, so the bound tightens.
  EXPECT_LT(pull.elapsed_ms, 0.65 * lpt.elapsed_ms)
      << "pull pool did not beat static LPT on a skewed fleet";
  EXPECT_GT(pull.leases_granted, lpt.leases_granted);
  EXPECT_EQ(pull.worker_failures, 0);
  EXPECT_EQ(lpt.worker_failures, 0);
}

TEST_F(DispatchTest, PerWorkerRatesTrackEachMachineOnAHeterogeneousFleet) {
  // Two machines an order of magnitude apart: the final stats must carry a learned
  // rate per machine, and the slow machine's rate must actually be much larger —
  // a single fleet-wide EWMA would report one blended number and the straggler
  // deadline / steal valuation would mis-predict both workers.
  InProcessTransport::Options in_options;
  in_options.delay_per_result = {{0, 90}, {1, 15}};
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  options.target_lease_ms = 120;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_TRUE(stats.cost_model_seeded);
  EXPECT_TRUE(std::isfinite(stats.cost_rate_ms));
  ASSERT_TRUE(stats.worker_cost_rates.count(0));
  ASSERT_TRUE(stats.worker_cost_rates.count(1));
  // 90 ms vs 15 ms of injected floor per unit: the learned rates must diverge by
  // well over the EWMA's smoothing slack.
  EXPECT_GT(stats.worker_cost_rates.at(0), 2.0 * stats.worker_cost_rates.at(1))
      << "per-worker rates did not separate a slow machine from a fast one";
  // The fleet prior blends both, so it sits between them.
  EXPECT_GT(stats.cost_rate_ms, stats.worker_cost_rates.at(1));
  EXPECT_LT(stats.cost_rate_ms, stats.worker_cost_rates.at(0));
}

TEST_F(DispatchTest, UnseededCostModelReportsNaNSentinelNotZero) {
  // The satellite-1 regression: a fully-preseeded dispatch (every unit merged
  // before any worker launches — the cache-hit-everything rerun) never feeds the
  // cost model, so the old `cost_rate_ms = 0.0` report was indistinguishable from a
  // genuinely instant fleet.  The sentinel is NaN plus an explicit flag.
  InProcessTransport transport;
  DispatchOptions options;
  options.num_workers = 2;
  options.preseeded_results = RunSweepUnits(*plan_, plan_->units);
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_EQ(stats.workers_launched, 0);
  EXPECT_FALSE(stats.cost_model_seeded);
  EXPECT_TRUE(std::isnan(stats.cost_rate_ms));
  EXPECT_TRUE(stats.worker_cost_rates.empty());
}

TEST_F(DispatchTest, IdleWorkerStealsFromAnOverloadedPeer) {
  // Worker 0 takes 300 ms per unit; worker 1 drains the rest of the plan and goes
  // idle long before worker 0 finishes even one unit of its two-unit warm-up lease.
  // With nothing pending, the only way worker 1 gets work — and the dispatch gets
  // its makespan back — is revoking the overloaded lease and re-granting its
  // unfinished remainder.  The straggler deadline is set high so it cannot be the
  // mechanism; any re-plan here is a steal.
  InProcessTransport::Options in_options;
  in_options.delay_per_result = {{0, 300}};
  InProcessTransport transport(in_options);
  DispatchOptions options;
  options.num_workers = 2;
  options.target_lease_ms = 100;  // age/overload guards trip at a few hundred ms
  options.straggler_deadline_ms = 60000;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.units_stolen, 1);
  EXPECT_GE(stats.lease_revocations, 1);
  EXPECT_EQ(stats.stragglers, 0) << "re-plan must come from stealing, not deadline";
  EXPECT_EQ(stats.worker_failures, 0);
}

TEST_F(DispatchTest, CostScaledDeadlineToleratesSlowUnitsWithHeartbeatsOff) {
  // The satellite-2 regression: heartbeats off, every unit slower than the flat
  // straggler deadline.  A flat deadline declares healthy workers stragglers over
  // and over (the control run below proves the setup would trip it); the
  // cost-scaled deadline sees the seeded model predict long units and stretches,
  // so nobody is declared a straggler.  Both schedules must still merge
  // byte-identically — false straggling costs duplicate work, never correctness.
  double min_cost = std::numeric_limits<double>::infinity();
  for (const SweepUnit& unit : plan_->units) {
    min_cost = std::min(min_cost, SweepUnitCost(unit));
  }
  ASSERT_GT(min_cost, 0.0);
  constexpr int kDelayMs = 120;
  const auto run = [&](double cost_factor, DispatchStats* stats) {
    InProcessTransport::Options in_options;
    in_options.heartbeat_interval_ms = 0;  // silence between results is real
    in_options.delay_per_result = {{0, kDelayMs}, {1, kDelayMs}};
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = 2;
    options.straggler_deadline_ms = 50;  // flat deadline < one unit's wall time
    options.straggler_cost_factor = cost_factor;
    // Seed the model so every unit is predicted to take >= 2 x kDelayMs: deadline
    // behavior is then deterministic from the first lease.
    options.initial_cost_rate_ms = 2.0 * kDelayMs / min_cost;
    std::string csv;
    const serde::Status s = Dispatch(transport, options, &csv, stats);
    ASSERT_TRUE(s.ok) << s.message;
    EXPECT_EQ(csv, *monolithic_csv_);
  };
  DispatchStats scaled;
  run(/*cost_factor=*/4.0, &scaled);
  EXPECT_EQ(scaled.stragglers, 0)
      << "cost-scaled deadline still misfires on long units";
  DispatchStats flat;
  run(/*cost_factor=*/0.0, &flat);
  EXPECT_GE(flat.stragglers, 1)
      << "control: the flat deadline was never in danger, so the scaled run "
         "proves nothing";
}

TEST_F(DispatchTest, RandomizedScheduleMatrixMergesByteIdenticallyForAllK) {
  // The satellite-4 equivalence suite: kills x silences x duplicates x skewed
  // speeds (which drive revocations and steals via the small lease target), over
  // K in {2, 4, 8}.  Whatever the schedule, the merged aggregate must be the
  // monolithic bytes.
  for (const int workers : {2, 4, 8}) {
    for (const uint32_t seed : {7u, 11u}) {
      std::mt19937 rng(1000u * static_cast<uint32_t>(workers) + seed);
      InProcessTransport::Options in_options;
      in_options.heartbeat_interval_ms = 50;
      for (int w = 0; w < workers; ++w) {
        switch (rng() % 4) {
          case 0:
            in_options.fail_after[w] = 1 + static_cast<int>(rng() % 4);
            break;
          case 1:
            in_options.hang_after[w] = static_cast<int>(rng() % 3);
            break;
          case 2:
            in_options.delay_per_result[w] = 30 + static_cast<int>(rng() % 3) * 30;
            break;
          default:
            break;  // a well-behaved worker
        }
        if (rng() % 2 == 0) {
          in_options.duplicate_results.insert(w);
        }
      }
      InProcessTransport transport(in_options);
      DispatchOptions options;
      options.num_workers = workers;
      options.lease_mode = LeaseMode::kPull;
      options.enable_steal = true;
      options.target_lease_ms = 25;  // small leases: lots of grants and steals
      options.straggler_deadline_ms = 250;
      options.max_worker_launches = 64;
      std::string csv;
      DispatchStats stats;
      const serde::Status s = Dispatch(transport, options, &csv, &stats);
      ASSERT_TRUE(s.ok) << "workers=" << workers << " seed=" << seed << ": "
                        << s.message;
      EXPECT_EQ(csv, *monolithic_csv_) << "workers=" << workers << " seed=" << seed;
    }
  }
}

// --- lease pipelining ---------------------------------------------------------------

TEST_F(DispatchTest, PipelinedLeasesMergeByteIdenticallyAndActuallyPipeline) {
  // Small leases force many grants, so a draining lease nearly always has a
  // prefetch in flight.  Identical bytes, and the stats prove the mechanism ran.
  InProcessTransport transport;
  DispatchOptions options;
  options.num_workers = 2;
  options.pipeline_leases = true;
  options.max_lease_units = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.leases_pipelined, 1) << "pipelining was enabled but never used";
  EXPECT_LE(stats.leases_pipelined, stats.leases_granted);
}

TEST_F(DispatchTest, PipeliningSurvivesKillsStealsAndRevocations) {
  // The revocation-aware part of the tentpole: a prefetch granted to a worker that
  // then dies, hangs, or gets stolen from must be requeued like any other lease —
  // and a revoked prefetch must never execute.  Same randomized matrix as the
  // equivalence suite, pipelining on.
  for (const int workers : {2, 4}) {
    for (const uint32_t seed : {21u, 22u, 23u}) {
      std::mt19937 rng(1000u * static_cast<uint32_t>(workers) + seed);
      InProcessTransport::Options in_options;
      in_options.heartbeat_interval_ms = 50;
      for (int w = 0; w < workers; ++w) {
        switch (rng() % 4) {
          case 0:
            in_options.fail_after[w] = 1 + static_cast<int>(rng() % 4);
            break;
          case 1:
            in_options.hang_after[w] = static_cast<int>(rng() % 3);
            break;
          case 2:
            in_options.delay_per_result[w] = 30 + static_cast<int>(rng() % 3) * 30;
            break;
          default:
            break;
        }
        if (rng() % 2 == 0) {
          in_options.duplicate_results.insert(w);
        }
      }
      InProcessTransport transport(in_options);
      DispatchOptions options;
      options.num_workers = workers;
      options.pipeline_leases = true;
      options.target_lease_ms = 25;
      options.straggler_deadline_ms = 250;
      options.max_worker_launches = 64;
      std::string csv;
      DispatchStats stats;
      const serde::Status s = Dispatch(transport, options, &csv, &stats);
      ASSERT_TRUE(s.ok) << "workers=" << workers << " seed=" << seed << ": "
                        << s.message;
      EXPECT_EQ(csv, *monolithic_csv_) << "workers=" << workers << " seed=" << seed;
    }
  }
}

// --- checkpointed merge accumulator ------------------------------------------------

TEST_F(DispatchTest, CompletedDispatchWritesAFinalCheckpointCoveringEveryUnit) {
  const std::string path = ::testing::TempDir() + "/dispatch_final.ckpt";
  std::remove(path.c_str());
  InProcessTransport transport;
  DispatchOptions options;
  options.num_workers = 2;
  options.checkpoint_path = path;
  options.checkpoint_every = 4;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GE(stats.checkpoints_written, 1);

  std::string text;
  ASSERT_TRUE(serde::ReadFile(path, &text).ok);
  SweepCheckpoint checkpoint;
  ASSERT_TRUE(ParseSweepCheckpoint(text, &checkpoint).ok);
  EXPECT_EQ(checkpoint.plan_fingerprint, PlanFingerprint(*plan_));
  EXPECT_EQ(checkpoint.results.size(), plan_->units.size());
  // The checkpoint alone must reconstruct the monolithic bytes.
  SweepMergeAccumulator accumulator(*plan_);
  for (const SweepUnitResult& result : checkpoint.results) {
    bool newly = false;
    ASSERT_TRUE(accumulator.Add(result, &newly).ok);
  }
  std::vector<CellResult> cells;
  ASSERT_TRUE(accumulator.Finalize(&cells).ok);
  EXPECT_EQ(SweepAggregateCsv(*plan_, cells), *monolithic_csv_);
}

TEST_F(DispatchTest, KilledDispatcherResumesFromCheckpointByteIdentically) {
  // The tentpole's crash-resume claim, in-library: kill the dispatcher (injected
  // crash) at randomized points, resume from whatever checkpoint survived, repeat
  // until a run completes — the final CSV must be the monolithic bytes, and
  // completed units must never be re-leased across the whole crash chain.
  for (const int workers : {2, 4, 8}) {
    for (const uint32_t seed : {5u, 9u}) {
      std::mt19937 rng(100u * static_cast<uint32_t>(workers) + seed);
      const std::string path = ::testing::TempDir() + "/dispatch_resume_" +
                               std::to_string(workers) + "_" + std::to_string(seed) +
                               ".ckpt";
      std::remove(path.c_str());
      std::string csv;
      DispatchStats stats;
      int crashes = 0;
      for (int attempt = 0;; ++attempt) {
        ASSERT_LT(attempt, 32) << "crash/resume chain did not converge";
        DispatchOptions options;
        options.num_workers = workers;
        options.checkpoint_path = path;
        options.checkpoint_every = 1 + static_cast<int>(rng() % 3);
        // Preseed from the surviving checkpoint, exactly like the tool does.
        std::string text;
        if (serde::ReadFile(path, &text).ok) {
          SweepCheckpoint checkpoint;
          ASSERT_TRUE(ParseSweepCheckpoint(text, &checkpoint).ok);
          ASSERT_EQ(checkpoint.plan_fingerprint, PlanFingerprint(*plan_));
          options.preseeded_results = checkpoint.results;
        }
        const size_t already = options.preseeded_results.size();
        // Crash a few results into the run, until the plan is nearly done; then
        // let one run finish.
        if (already + 6 < plan_->units.size()) {
          options.crash_after_results = 2 + static_cast<int>(rng() % 5);
        }
        InProcessTransport transport;
        const serde::Status s = Dispatch(transport, options, &csv, &stats);
        if (s.ok) {
          break;
        }
        ASSERT_NE(s.message.find("injected dispatcher crash"), std::string::npos)
            << s.message;
        ++crashes;
      }
      EXPECT_GE(crashes, 1) << "the schedule never actually crashed a dispatcher";
      EXPECT_EQ(csv, *monolithic_csv_)
          << "workers=" << workers << " seed=" << seed << " crashes=" << crashes;
      EXPECT_GT(stats.preseeded, 0);
      std::remove(path.c_str());
    }
  }
}

TEST_F(DispatchTest, CheckpointsCoexistWithFailuresStealsAndPipelining) {
  // Checkpoint writes interleave with worker kills, revocations, and prefetches;
  // the resumed run must still converge to the monolithic bytes.
  const std::string path = ::testing::TempDir() + "/dispatch_chaos.ckpt";
  std::remove(path.c_str());
  const auto run = [&](bool crash, std::string* csv, DispatchStats* stats) {
    InProcessTransport::Options in_options;
    in_options.fail_after = {{0, 2}};
    in_options.delay_per_result = {{1, 40}};
    in_options.duplicate_results = {2};
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = 3;
    options.pipeline_leases = true;
    options.target_lease_ms = 25;
    options.straggler_deadline_ms = 250;
    options.max_worker_launches = 32;
    options.checkpoint_path = path;
    options.checkpoint_every = 2;
    if (crash) {
      options.crash_after_results = 6;
    }
    std::string text;
    if (serde::ReadFile(path, &text).ok) {
      SweepCheckpoint checkpoint;
      ASSERT_TRUE(ParseSweepCheckpoint(text, &checkpoint).ok);
      options.preseeded_results = checkpoint.results;
    }
    const serde::Status s = Dispatch(transport, options, csv, stats);
    EXPECT_EQ(s.ok, !crash) << s.message;
  };
  std::string csv;
  DispatchStats stats;
  run(/*crash=*/true, &csv, &stats);
  run(/*crash=*/false, &csv, &stats);
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_GT(stats.preseeded, 0);
  std::remove(path.c_str());
}

// --- heartbeat shutdown ordering (satellite 3) --------------------------------------

TEST_F(DispatchTest, RapidHeartbeatsNeverOutliveTheirLeaseUnderRevocationChurn) {
  // A 1 ms heartbeat against revocation churn (steals via a skewed fleet + a
  // mid-lease death): if the heartbeat thread could still write after its lease
  // closed — the pre-RAII bug when an error unwound past the manual stop — the
  // TSan lane flags the channel race and byte-identity breaks under the torn
  // writes.  Run it a few times; the interleaving is the test.
  for (int round = 0; round < 3; ++round) {
    InProcessTransport::Options in_options;
    in_options.heartbeat_interval_ms = 1;
    in_options.delay_per_result = {{0, 60}};
    in_options.fail_after = {{1, 3}};
    InProcessTransport transport(in_options);
    DispatchOptions options;
    options.num_workers = 3;
    options.target_lease_ms = 25;
    options.straggler_deadline_ms = 400;
    options.pipeline_leases = (round % 2 == 1);
    options.max_worker_launches = 32;
    std::string csv;
    DispatchStats stats;
    const serde::Status s = Dispatch(transport, options, &csv, &stats);
    ASSERT_TRUE(s.ok) << "round=" << round << ": " << s.message;
    EXPECT_EQ(csv, *monolithic_csv_) << "round=" << round;
  }
}

// --- transport failure handling ----------------------------------------------------

// Fails the first N launches, then delegates to a real in-process transport.
class FlakyLaunchTransport : public Transport {
 public:
  explicit FlakyLaunchTransport(int failures) : failures_(failures) {}
  serde::Status Launch(int worker_index, std::unique_ptr<WorkerChannel>* out) override {
    if (failures_-- > 0) {
      return serde::Error("injected launch failure");
    }
    return inner_.Launch(worker_index, out);
  }

 private:
  int failures_;
  InProcessTransport inner_;
};

TEST_F(DispatchTest, FailedLaunchesAreRetriedAgainstTheBudget) {
  FlakyLaunchTransport transport(2);
  DispatchOptions options;
  options.num_workers = 2;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(csv, *monolithic_csv_);
  EXPECT_EQ(stats.failed_launches, 2);
  EXPECT_EQ(stats.workers_launched, 2);
}

// A channel whose worker is dead on arrival: sends succeed into the void, reads see
// an immediately-closed stream.
class DeadChannel : public WorkerChannel {
 public:
  serde::Status Send(std::string_view) override { return serde::Ok(); }
  ChannelRead Recv(int, std::string*) override { return ChannelRead::kClosed; }
  void Close() override {}
};

class DeadWorkerTransport : public Transport {
 public:
  serde::Status Launch(int, std::unique_ptr<WorkerChannel>* out) override {
    *out = std::make_unique<DeadChannel>();
    return serde::Ok();
  }
};

TEST_F(DispatchTest, ExhaustedLaunchBudgetIsAnErrorNotAHang) {
  DeadWorkerTransport transport;
  DispatchOptions options;
  options.num_workers = 2;
  options.max_worker_launches = 5;
  std::string csv;
  DispatchStats stats;
  const serde::Status s = Dispatch(transport, options, &csv, &stats);
  EXPECT_FALSE(s.ok);
  EXPECT_NE(s.message.find("launch budget"), std::string::npos);
  EXPECT_EQ(stats.workers_launched, 5);
}

// --- worker-side protocol validation -----------------------------------------------

// A scripted link: the worker reads the canned lines, writes into `sent`.
class ScriptedLink : public WorkerLink {
 public:
  explicit ScriptedLink(std::vector<std::string> lines) : lines_(std::move(lines)) {}
  bool ReadLine(std::string* line) override {
    if (next_ >= lines_.size()) {
      return false;
    }
    *line = lines_[next_++];
    return true;
  }
  bool TryReadLine(std::string*) override { return false; }  // nothing mid-lease
  serde::Status WriteLine(std::string_view line) override {
    sent.emplace_back(line);
    return serde::Ok();
  }
  std::vector<std::string> sent;

 private:
  std::vector<std::string> lines_;
  size_t next_ = 0;
};

TEST_F(DispatchTest, WorkerRejectsAPlanFingerprintMismatch) {
  // A syntactically valid lease whose claimed fingerprint does not match what the
  // spec builds: the worker must refuse (unit ids would be meaningless) and report
  // a worker-error instead of returning mis-numbered results.
  LeaseGrant grant;
  grant.seq = 0;
  grant.plan_fingerprint = PlanFingerprint(*plan_) + 1;
  grant.num_units = 1;
  grant.num_snapshots = 0;
  std::vector<std::string> lines = {SerializeLeaseGrant(grant)};
  const std::string spec_text = SerializeSweepSpec(plan_->spec);
  size_t pos = 0;
  while (pos < spec_text.size()) {
    const size_t nl = spec_text.find('\n', pos);
    lines.emplace_back(spec_text, pos, nl - pos);
    pos = nl + 1;
  }
  for (std::string& id_line : SerializeUnitIdLines(std::vector<int>{0})) {
    lines.push_back(std::move(id_line));
  }
  lines.push_back(SerializeLeaseEnd(0));

  ScriptedLink link(lines);
  EXPECT_EQ(RunDispatchWorker(link), 4);
  // hello, lease-request, then the refusal.
  ASSERT_GE(link.sent.size(), 3u);
  WorkerMessage last;
  ASSERT_TRUE(ParseWorkerMessage(link.sent.back(), &last).ok);
  EXPECT_EQ(last.kind, WorkerMessage::Kind::kError);
  EXPECT_NE(last.reason.find("fingerprint"), std::string::npos);
}

TEST_F(DispatchTest, WorkerExitsCleanlyOnShutdownAndOnEof) {
  ScriptedLink shutdown_link({std::string(kShutdownLine)});
  EXPECT_EQ(RunDispatchWorker(shutdown_link), 0);

  ScriptedLink eof_link({});
  EXPECT_EQ(RunDispatchWorker(eof_link), 0);
  // Both said hello before exiting.
  WorkerMessage hello;
  ASSERT_TRUE(ParseWorkerMessage(eof_link.sent.front(), &hello).ok);
  EXPECT_EQ(hello.kind, WorkerMessage::Kind::kHello);
}

}  // namespace
}  // namespace alert
