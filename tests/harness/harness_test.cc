#include <algorithm>
#include <gtest/gtest.h>

#include "src/harness/constraint_grid.h"
#include "src/harness/evaluation.h"
#include "src/common/parallel.h"
#include "src/harness/schemes.h"
#include "src/harness/static_oracle.h"

namespace alert {
namespace {

// --- Constraint grid ---

TEST(ConstraintGridTest, BaseDeadlineMatchesAnytimeLatency) {
  EXPECT_NEAR(BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1), 0.064, 1e-9);
  EXPECT_NEAR(BaseDeadline(TaskId::kSentencePrediction, PlatformId::kCpu1), 0.012, 1e-9);
}

TEST(ConstraintGridTest, GridHas36Settings) {
  for (GoalMode mode : {GoalMode::kMinimizeEnergy, GoalMode::kMaximizeAccuracy}) {
    const auto grid =
        BuildConstraintGrid(mode, TaskId::kImageClassification, PlatformId::kCpu1);
    EXPECT_EQ(grid.size(), 36u);
    for (const Goals& g : grid) {
      EXPECT_TRUE(g.Valid());
      EXPECT_EQ(g.mode, mode);
    }
  }
}

TEST(ConstraintGridTest, DeadlinesSpanPointFourToTwo) {
  const auto& mults = DeadlineMultipliers();
  EXPECT_DOUBLE_EQ(mults.front(), 0.4);
  EXPECT_DOUBLE_EQ(mults.back(), 2.0);
  const auto grid = BuildConstraintGrid(GoalMode::kMinimizeEnergy,
                                        TaskId::kImageClassification, PlatformId::kCpu1);
  const double base = BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  double lo = 1e9;
  double hi = 0.0;
  for (const Goals& g : grid) {
    lo = std::min(lo, g.deadline);
    hi = std::max(hi, g.deadline);
  }
  EXPECT_NEAR(lo, 0.4 * base, 1e-12);
  EXPECT_NEAR(hi, 2.0 * base, 1e-12);
}

TEST(ConstraintGridTest, AccuracyGoalsAchievableByFamilies) {
  for (TaskId task : {TaskId::kImageClassification, TaskId::kSentencePrediction}) {
    const auto set = BuildEvaluationSet(task, DnnSetChoice::kBoth);
    double best = 0.0;
    for (const auto& m : set) {
      best = std::max(best, m.accuracy);
    }
    for (double goal : AccuracyGoalsFor(task)) {
      EXPECT_LT(goal, best) << TaskName(task);
    }
  }
}

TEST(ConstraintGridTest, EnergyBudgetsScaleWithDeadline) {
  const auto grid = BuildConstraintGrid(GoalMode::kMaximizeAccuracy,
                                        TaskId::kImageClassification, PlatformId::kCpu1);
  // Budgets within a deadline group are increasing; across deadlines they scale.
  for (size_t i = 0; i + 1 < grid.size(); ++i) {
    if (grid[i].deadline == grid[i + 1].deadline) {
      EXPECT_LT(grid[i].energy_budget, grid[i + 1].energy_budget);
    }
  }
}

// --- Scheme factory ---

TEST(SchemesTest, NamesAreUnique) {
  std::vector<std::string_view> names;
  for (int i = 0; i <= static_cast<int>(SchemeId::kOracle); ++i) {
    names.push_back(SchemeName(static_cast<SchemeId>(i)));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(SchemesTest, DnnSetAssignments) {
  EXPECT_EQ(SchemeDnnSet(SchemeId::kAlert), DnnSetChoice::kBoth);
  EXPECT_EQ(SchemeDnnSet(SchemeId::kAlertAny), DnnSetChoice::kAnytimeOnly);
  EXPECT_EQ(SchemeDnnSet(SchemeId::kAlertTrad), DnnSetChoice::kTraditionalOnly);
  EXPECT_EQ(SchemeDnnSet(SchemeId::kAppOnly), DnnSetChoice::kAnytimeOnly);
  EXPECT_EQ(SchemeDnnSet(SchemeId::kNoCoord), DnnSetChoice::kAnytimeOnly);
  EXPECT_EQ(SchemeDnnSet(SchemeId::kSysOnly), DnnSetChoice::kBoth);
}

TEST(SchemesTest, FactoryBuildsEveryScheme) {
  ExperimentOptions o;
  o.num_inputs = 40;
  o.seed = 2;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone, o);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9;
  for (int i = 0; i <= static_cast<int>(SchemeId::kOracle); ++i) {
    const SchemeId id = static_cast<SchemeId>(i);
    auto s = MakeScheduler(id, ex, goals);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), SchemeName(id));
    // And it can actually run.
    const RunResult r = ex.Run(ex.stack(SchemeDnnSet(id)), *s, goals);
    EXPECT_EQ(r.num_inputs, 40);
  }
}

// --- Static oracle ---

TEST(StaticOracleTest, FindsAdmissibleConfigOnEasySetting) {
  ExperimentOptions o;
  o.num_inputs = 100;
  o.seed = 4;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone, o);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.12;
  goals.accuracy_goal = 0.88;
  const auto result = FindStaticOracle(ex, ex.stack(DnnSetChoice::kBoth), goals);
  EXPECT_TRUE(result.feasible);
  EXPECT_FALSE(SettingViolated(goals, result.result));
  EXPECT_GE(result.result.avg_accuracy, 0.85);
}

TEST(StaticOracleTest, NoConfigBeatsTheStaticOracle) {
  ExperimentOptions o;
  o.num_inputs = 80;
  o.seed = 6;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone, o);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.1;
  goals.accuracy_goal = 0.9;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  const auto best = FindStaticOracle(ex, stack, goals);
  ASSERT_TRUE(best.feasible);
  for (int ci = 0; ci < stack.space().num_candidates(); ++ci) {
    for (int pi = 0; pi < stack.space().num_powers(); ++pi) {
      const RunResult r =
          ex.RunStatic(stack, Configuration{stack.space().candidate(ci), pi}, goals);
      if (!SettingViolated(goals, r)) {
        EXPECT_GE(r.avg_energy, best.result.avg_energy - 1e-9);
      }
    }
  }
}

TEST(StaticOracleTest, InfeasibleSettingIsFlagged) {
  ExperimentOptions o;
  o.num_inputs = 60;
  o.seed = 8;
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone, o);
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.0005;  // impossible
  goals.accuracy_goal = 0.95;
  const auto result = FindStaticOracle(ex, ex.stack(DnnSetChoice::kBoth), goals);
  EXPECT_FALSE(result.feasible);
}

// --- Evaluation ---

TEST(EvaluationTest, MetricSelection) {
  RunResult r;
  r.avg_energy = 2.0;
  r.avg_error = 0.1;
  r.avg_perplexity = 150.0;
  EXPECT_EQ(MetricValue(GoalMode::kMinimizeEnergy, TaskId::kImageClassification, r), 2.0);
  EXPECT_EQ(MetricValue(GoalMode::kMaximizeAccuracy, TaskId::kImageClassification, r), 0.1);
  EXPECT_EQ(MetricValue(GoalMode::kMaximizeAccuracy, TaskId::kSentencePrediction, r),
            150.0);
}

TEST(EvaluationTest, CellEvaluationProducesCoherentStats) {
  CellSpec spec;
  spec.task = TaskId::kImageClassification;
  spec.platform = PlatformId::kCpu1;
  spec.contention = ContentionType::kNone;
  spec.mode = GoalMode::kMinimizeEnergy;
  spec.options.num_inputs = 120;
  spec.options.seed = 21;
  const SchemeId schemes[] = {SchemeId::kAlert, SchemeId::kOracle};
  const CellResult cell = EvaluateCell(spec, schemes);
  EXPECT_EQ(cell.total_settings, 36);
  ASSERT_EQ(cell.schemes.size(), 2u);
  for (const auto& s : cell.schemes) {
    EXPECT_EQ(s.usable_settings + cell.skipped_settings, 36);
    EXPECT_LE(s.violated_settings, s.usable_settings);
    EXPECT_EQ(s.normalized_values.size(),
              static_cast<size_t>(s.usable_settings - s.violated_settings));
    for (double v : s.normalized_values) {
      EXPECT_GT(v, 0.0);
    }
  }
  // The oracle never violates and never loses to the static oracle.
  const auto* oracle = cell.Find(SchemeId::kOracle);
  ASSERT_NE(oracle, nullptr);
  EXPECT_EQ(oracle->violated_settings, 0);
  EXPECT_LE(oracle->mean_normalized, 1.0 + 1e-9);
}

TEST(EvaluationTest, FindReturnsNullForMissingScheme) {
  CellResult cell;
  EXPECT_EQ(cell.Find(SchemeId::kAlert), nullptr);
}

// --- ParallelFor ---

TEST(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> counts(500);
  ParallelFor(500, [&](int i) { counts[static_cast<size_t>(i)].fetch_add(1); }, 8);
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelForTest, SingleThreadFallback) {
  int sum = 0;
  ParallelFor(10, [&](int i) { sum += i; }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, [](int) { FAIL(); });
}

}  // namespace
}  // namespace alert
