// Round-trip and malformed-input tests for the dispatcher wire protocol.  Every
// record must serialize deterministically, parse back exactly, and reject corruption
// with a Status (never an abort) — a flaky ssh hop must not be able to crash the
// dispatcher or smuggle in a mis-keyed field.
#include "src/harness/dispatch_protocol.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

namespace alert {
namespace {

TEST(DispatchProtocolTest, LeaseGrantRoundTrips) {
  LeaseGrant grant;
  grant.seq = 7;
  grant.plan_fingerprint = 0xdeadbeefcafef00dULL;
  grant.num_units = 123;
  grant.num_snapshots = 6;
  LeaseGrant parsed;
  const serde::Status s = ParseLeaseGrant(SerializeLeaseGrant(grant), &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, grant);
}

TEST(DispatchProtocolTest, LeaseGrantRejectsCorruption) {
  LeaseGrant grant;
  grant.num_units = 4;
  const std::string good = SerializeLeaseGrant(grant);
  LeaseGrant out;
  ASSERT_TRUE(ParseLeaseGrant(good, &out).ok);

  // Wrong record, trailing junk, an empty lease, and both version skews.
  EXPECT_FALSE(
      ParseLeaseGrant("result seq=0 unit=1 skipped=0 usable=0 ms=1", &out).ok);
  EXPECT_FALSE(ParseLeaseGrant(good + " extra=1", &out).ok);
  EXPECT_FALSE(
      ParseLeaseGrant("lease-grant v=2 seq=0 plan=1 units=0 snapshots=0", &out).ok);
  EXPECT_FALSE(
      ParseLeaseGrant("lease-grant v=1 seq=0 plan=1 units=4 snapshots=0", &out).ok);
  EXPECT_FALSE(
      ParseLeaseGrant("lease-grant v=3 seq=0 plan=1 units=4 snapshots=0", &out).ok);
}

TEST(DispatchProtocolTest, SnapshotKeyRoundTripsAndRangeChecks) {
  SnapshotKey key;
  key.task = TaskId::kSentencePrediction;
  key.platform = PlatformId::kGpu;
  key.seed = 42;
  key.choice = DnnSetChoice::kAnytimeOnly;
  SnapshotKey parsed;
  const serde::Status s = ParseSnapshotKey(SerializeSnapshotKey(key), &parsed);
  ASSERT_TRUE(s.ok) << s.message;
  EXPECT_EQ(parsed, key);

  EXPECT_FALSE(
      ParseSnapshotKey("snapshot-for task=9 platform=0 seed=1 choice=0", &parsed).ok);
  EXPECT_FALSE(
      ParseSnapshotKey("snapshot-for task=0 platform=0 seed=1 choice=3", &parsed).ok);
}

TEST(DispatchProtocolTest, UnitIdLinesRoundTripAtAnySize) {
  for (const int count : {1, kMaxIdsPerLine - 1, kMaxIdsPerLine, kMaxIdsPerLine + 1,
                          5 * kMaxIdsPerLine + 3}) {
    std::vector<int> ids(static_cast<size_t>(count));
    std::iota(ids.begin(), ids.end(), 100);
    const std::vector<std::string> lines = SerializeUnitIdLines(ids);
    EXPECT_EQ(lines.size(),
              (ids.size() + kMaxIdsPerLine - 1) / static_cast<size_t>(kMaxIdsPerLine));
    std::vector<int> parsed;
    for (const std::string& line : lines) {
      const serde::Status s = ParseUnitIdLine(line, &parsed);
      ASSERT_TRUE(s.ok) << s.message;
    }
    EXPECT_EQ(parsed, ids);
  }
}

TEST(DispatchProtocolTest, UnitIdLineRejectsJunk) {
  std::vector<int> ids;
  EXPECT_FALSE(ParseUnitIdLine("ids values=1,,2", &ids).ok);
  EXPECT_FALSE(ParseUnitIdLine("ids values=1,-2", &ids).ok);
  EXPECT_FALSE(ParseUnitIdLine("ids values=1,x", &ids).ok);
  EXPECT_FALSE(ParseUnitIdLine("ids count=3", &ids).ok);
}

TEST(DispatchProtocolTest, LeaseEndAndRevokeRoundTrip) {
  int seq = -1;
  ASSERT_TRUE(ParseLeaseEnd(SerializeLeaseEnd(9), &seq).ok);
  EXPECT_EQ(seq, 9);
  EXPECT_FALSE(ParseLeaseEnd(SerializeLeaseRevoke(9), &seq).ok);

  seq = -1;
  ASSERT_TRUE(ParseLeaseRevoke(SerializeLeaseRevoke(3), &seq).ok);
  EXPECT_EQ(seq, 3);
  EXPECT_FALSE(ParseLeaseRevoke(SerializeLeaseEnd(3), &seq).ok);
  EXPECT_FALSE(ParseLeaseRevoke("lease-revoke seq=3 extra=1", &seq).ok);
}

TEST(DispatchProtocolTest, WorkerMessagesRoundTrip) {
  WorkerMessage m;
  ASSERT_TRUE(ParseWorkerMessage(SerializeWorkerHello(), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kHello);

  ASSERT_TRUE(ParseWorkerMessage(SerializeLeaseRequest(), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kLeaseRequest);

  ASSERT_TRUE(ParseWorkerMessage(SerializeHeartbeat(3, 17), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kHeartbeat);
  EXPECT_EQ(m.seq, 3);
  EXPECT_EQ(m.done, 17);

  SweepUnitResult result;
  result.unit_id = 12;
  result.usable = true;
  result.metric = 0.12345678901234567;
  ASSERT_TRUE(
      ParseWorkerMessage(SerializeWorkerResult(5, result, 250.25), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kResult);
  EXPECT_EQ(m.seq, 5);
  EXPECT_EQ(m.result, result);  // exact double round-trip (%.17g)
  EXPECT_DOUBLE_EQ(m.unit_ms, 250.25);

  SweepUnitResult skipped;
  skipped.unit_id = 4;
  skipped.skipped = true;
  ASSERT_TRUE(ParseWorkerMessage(SerializeWorkerResult(5, skipped, 0.0), &m).ok);
  EXPECT_EQ(m.result, skipped);

  // Garbage timings are clamped on the wire, never round-tripped.
  ASSERT_TRUE(ParseWorkerMessage(SerializeWorkerResult(5, skipped, -7.0), &m).ok);
  EXPECT_EQ(m.unit_ms, 0.0);

  ASSERT_TRUE(ParseWorkerMessage(SerializeLeaseDone(8, 40, 44, 0x1234ULL), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kLeaseDone);
  EXPECT_EQ(m.seq, 8);
  EXPECT_EQ(m.done, 40);  // a revoked lease legitimately delivers fewer than granted
  EXPECT_EQ(m.num_units, 44);
  EXPECT_EQ(m.plan_fingerprint, 0x1234ULL);

  ASSERT_TRUE(ParseWorkerMessage(SerializeWorkerError(2, "spec parse failed"), &m).ok);
  EXPECT_EQ(m.kind, WorkerMessage::Kind::kError);
  EXPECT_EQ(m.reason, "spec_parse_failed");  // sanitized to one token
}

TEST(DispatchProtocolTest, WorkerMessageRejectsMalformedLines) {
  WorkerMessage m;
  EXPECT_FALSE(ParseWorkerMessage("", &m).ok);
  EXPECT_FALSE(ParseWorkerMessage("unknown-tag a=1", &m).ok);
  EXPECT_FALSE(ParseWorkerMessage("worker-hello v=9", &m).ok);
  EXPECT_FALSE(ParseWorkerMessage("lease-request v=1", &m).ok);
  // A result without its timing: v1 leftovers must not parse as v2.
  EXPECT_FALSE(ParseWorkerMessage("result seq=0 unit=1 skipped=1 usable=0", &m).ok);
  // Negative and NaN timings.
  EXPECT_FALSE(
      ParseWorkerMessage("result seq=0 unit=1 skipped=1 usable=0 ms=-1", &m).ok);
  EXPECT_FALSE(
      ParseWorkerMessage("result seq=0 unit=1 skipped=1 usable=0 ms=nan", &m).ok);
  // usable result without its metric, and a both-skipped-and-usable contradiction.
  EXPECT_FALSE(
      ParseWorkerMessage("result seq=0 unit=1 skipped=0 usable=1 ms=1", &m).ok);
  EXPECT_FALSE(ParseWorkerMessage(
                   "result seq=0 unit=1 skipped=1 usable=1 metric=1 ms=1", &m)
                   .ok);
  // A lease-done claiming more deliveries than its lease held.
  EXPECT_FALSE(
      ParseWorkerMessage("lease-done seq=0 done=5 units=4 plan=1", &m).ok);
  // A line truncated mid-key (a killed worker's torn last line).
  EXPECT_FALSE(ParseWorkerMessage("result seq=0 uni", &m).ok);
}

}  // namespace
}  // namespace alert
