#include "src/dnn/zoo.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/dnn/model.h"

namespace alert {
namespace {

TEST(ImageNetZooTest, Has42Models) {
  EXPECT_EQ(BuildImageNetZoo().size(), 42u);
}

TEST(ImageNetZooTest, LatencySpanMatchesPaper) {
  // Section 2.1: "the fastest model runs almost 18x faster than the slowest one".
  const auto zoo = BuildImageNetZoo();
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& m : zoo) {
    lo = std::min(lo, m.ref_latency_on(PlatformId::kCpu2));
    hi = std::max(hi, m.ref_latency_on(PlatformId::kCpu2));
  }
  EXPECT_NEAR(hi / lo, 18.0, 1.0);
}

TEST(ImageNetZooTest, ErrorSpanMatchesPaper) {
  // "the most accurate model has about 7.8x lower error rate than the least accurate".
  const auto zoo = BuildImageNetZoo();
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& m : zoo) {
    lo = std::min(lo, 1.0 - m.accuracy);
    hi = std::max(hi, 1.0 - m.accuracy);
  }
  EXPECT_NEAR(hi / lo, 7.8, 0.3);
}

TEST(ImageNetZooTest, EnergySpanExceeds20x) {
  // Energy proxy at max power: demand * latency; "more than 20x of energy usage".
  const auto zoo = BuildImageNetZoo();
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& m : zoo) {
    const double e = m.power_demand_frac * m.ref_latency_on(PlatformId::kCpu2);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi / lo, 20.0);
}

TEST(ImageNetZooTest, NoImageModelRunsOnEmbedded) {
  // Fig. 4 caption: image tasks run out of memory on the embedded board.
  for (const auto& m : BuildImageNetZoo()) {
    EXPECT_FALSE(m.SupportsPlatform(PlatformId::kEmbedded)) << m.name;
  }
}

TEST(ImageNetZooTest, NoDominatedFrontierEndpoints) {
  // The most accurate network must be the slowest-or-near-slowest; the fastest must be
  // the least accurate (no free lunch, Section 2.1's "no magic DNN").
  const auto zoo = BuildImageNetZoo();
  const auto most_accurate = std::max_element(
      zoo.begin(), zoo.end(),
      [](const DnnModel& a, const DnnModel& b) { return a.accuracy < b.accuracy; });
  const auto fastest = std::min_element(zoo.begin(), zoo.end(),
      [](const DnnModel& a, const DnnModel& b) {
        return a.ref_latency_on(PlatformId::kCpu2) < b.ref_latency_on(PlatformId::kCpu2);
      });
  EXPECT_GT(most_accurate->ref_latency_on(PlatformId::kCpu2), 0.2);
  EXPECT_LT(fastest->accuracy, 0.75);
}

TEST(ImageNetZooTest, UniqueNames) {
  const auto zoo = BuildImageNetZoo();
  std::vector<std::string> names;
  for (const auto& m : zoo) {
    names.push_back(m.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(FamilyTest, SparseResNetOrderedBySizeAndAccuracy) {
  const auto family = BuildSparseResNetFamily();
  EXPECT_EQ(family.size(), 5u);
  for (size_t i = 1; i < family.size(); ++i) {
    EXPECT_GT(family[i].ref_latency_on(PlatformId::kCpu1),
              family[i - 1].ref_latency_on(PlatformId::kCpu1));
    EXPECT_GT(family[i].accuracy, family[i - 1].accuracy);
    EXPECT_EQ(family[i].family_rank, static_cast<int>(i));
  }
}

TEST(FamilyTest, RnnFamilyOrdered) {
  const auto family = BuildRnnFamily();
  EXPECT_EQ(family.size(), 5u);
  for (size_t i = 1; i < family.size(); ++i) {
    EXPECT_GT(family[i].ref_latency_on(PlatformId::kCpu1),
              family[i - 1].ref_latency_on(PlatformId::kCpu1));
    EXPECT_GT(family[i].accuracy, family[i - 1].accuracy);
  }
}

TEST(FamilyTest, RnnRunsEverywhere) {
  for (const auto& m : BuildRnnFamily()) {
    for (int p = 0; p < kNumPlatforms; ++p) {
      EXPECT_TRUE(m.SupportsPlatform(static_cast<PlatformId>(p))) << m.name;
    }
  }
}

TEST(AnytimeTest, DepthNestLadderIsMonotone) {
  const DnnModel m = BuildDepthNestAnytime();
  ASSERT_TRUE(m.is_anytime());
  ASSERT_EQ(m.anytime_stages.size(), 5u);
  for (size_t i = 1; i < m.anytime_stages.size(); ++i) {
    EXPECT_GT(m.anytime_stages[i].latency_fraction, m.anytime_stages[i - 1].latency_fraction);
    EXPECT_GT(m.anytime_stages[i].accuracy, m.anytime_stages[i - 1].accuracy);
  }
  EXPECT_DOUBLE_EQ(m.anytime_stages.back().latency_fraction, 1.0);
  EXPECT_DOUBLE_EQ(m.anytime_stages.back().accuracy, m.accuracy);
}

TEST(AnytimeTest, WidthNestLadderIsMonotone) {
  const DnnModel m = BuildWidthNestAnytime();
  ASSERT_TRUE(m.is_anytime());
  for (size_t i = 1; i < m.anytime_stages.size(); ++i) {
    EXPECT_GT(m.anytime_stages[i].latency_fraction, m.anytime_stages[i - 1].latency_fraction);
    EXPECT_GT(m.anytime_stages[i].accuracy, m.anytime_stages[i - 1].accuracy);
  }
}

TEST(AnytimeTest, AnytimeSlightlyLessAccurateThanComparableTraditional) {
  // Section 3.5: anytime DNNs "generally sacrifice accuracy for flexibility".
  const DnnModel any = BuildDepthNestAnytime();
  const auto family = BuildSparseResNetFamily();
  // The largest traditional network has comparable latency but higher accuracy.
  EXPECT_GT(family.back().accuracy, any.accuracy);
  EXPECT_NEAR(family.back().ref_latency_on(PlatformId::kCpu1),
              any.ref_latency_on(PlatformId::kCpu1), 0.01);
}

TEST(EvaluationSetTest, TraditionalOnlyHasNoAnytime) {
  for (const auto& m :
       BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kTraditionalOnly)) {
    EXPECT_FALSE(m.is_anytime());
  }
}

TEST(EvaluationSetTest, AnytimeOnlyHasOneAnytime) {
  const auto set =
      BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kAnytimeOnly);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_TRUE(set[0].is_anytime());
}

TEST(EvaluationSetTest, BothCombines) {
  const auto set = BuildEvaluationSet(TaskId::kSentencePrediction, DnnSetChoice::kBoth);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_TRUE(set.back().is_anytime());
  for (size_t i = 0; i + 1 < set.size(); ++i) {
    EXPECT_FALSE(set[i].is_anytime());
  }
}

TEST(ModelTest, RandomGuessAccuracies) {
  EXPECT_DOUBLE_EQ(TaskRandomGuessAccuracy(TaskId::kImageClassification), 0.005);
  EXPECT_DOUBLE_EQ(TaskRandomGuessAccuracy(TaskId::kSentencePrediction), 0.0001);
  EXPECT_GT(TaskRandomGuessAccuracy(TaskId::kQuestionAnswering), 0.0);
}

TEST(ModelTest, PerplexityMapIsMonotoneDecreasing) {
  double prev = PerplexityFromAccuracy(0.0);
  for (double acc = 0.05; acc <= 0.35; acc += 0.05) {
    const double ppl = PerplexityFromAccuracy(acc);
    EXPECT_LT(ppl, prev);
    prev = ppl;
  }
}

TEST(ModelTest, PerplexityCalibration) {
  // The evaluation RNN family should span roughly the Fig. 10 perplexity axis.
  EXPECT_NEAR(PerplexityFromAccuracy(0.301), 114.0, 10.0);
  EXPECT_NEAR(PerplexityFromAccuracy(0.214), 164.0, 15.0);
  EXPECT_GT(PerplexityFromAccuracy(0.0001), 380.0);
}

TEST(ModelTest, ContentionSensitivityByType) {
  DnnModel m;
  m.memory_sensitivity = 1.2;
  m.compute_sensitivity = 0.9;
  EXPECT_EQ(m.ContentionSensitivity(ContentionType::kNone), 0.0);
  EXPECT_EQ(m.ContentionSensitivity(ContentionType::kMemory), 1.2);
  EXPECT_EQ(m.ContentionSensitivity(ContentionType::kCompute), 0.9);
}

TEST(ModelTest, ProfilingSingletons) {
  EXPECT_FALSE(BuildVgg16().SupportsPlatform(PlatformId::kEmbedded));
  EXPECT_TRUE(BuildRnn().SupportsPlatform(PlatformId::kEmbedded));
  EXPECT_EQ(BuildBert().task, TaskId::kQuestionAnswering);
  EXPECT_GT(BuildVgg16().ref_latency_on(PlatformId::kCpu2),
            BuildResNet50().ref_latency_on(PlatformId::kCpu2));
}

}  // namespace
}  // namespace alert
