// End-to-end behavioural tests: the claims the paper's evaluation makes, asserted on
// the reproduced system.
#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/harness/constraint_grid.h"
#include "src/harness/evaluation.h"
#include "src/harness/schemes.h"
#include "src/harness/static_oracle.h"

namespace alert {
namespace {

ExperimentOptions Options(int inputs, uint64_t seed) {
  ExperimentOptions o;
  o.num_inputs = inputs;
  o.seed = seed;
  return o;
}

TEST(EndToEndTest, AlertTracksOracleEnergyWithinTenPercent) {
  // Section 5.2: ALERT achieves 93-99% of the oracle's energy optimization.
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                Options(400, 42));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  goals.accuracy_goal = 0.9;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult alert_run = ex.Run(stack, alert, goals);
  auto oracle = MakeScheduler(SchemeId::kOracle, ex, goals);
  const RunResult oracle_run = ex.Run(stack, *oracle, goals);
  EXPECT_LE(alert_run.avg_energy, 1.10 * oracle_run.avg_energy);
  EXPECT_LE(alert_run.violation_fraction, 0.10);
}

TEST(EndToEndTest, AlertBeatsOrMatchesStaticOracleUnderContention) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                Options(400, 17));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.0 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  goals.accuracy_goal = 0.9;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  const auto static_best = FindStaticOracle(ex, stack, goals);
  ASSERT_TRUE(static_best.feasible);
  AlertScheduler alert(stack.space(), goals);
  const RunResult alert_run = ex.Run(stack, alert, goals);
  EXPECT_LE(alert_run.avg_energy, 1.05 * static_best.result.avg_energy);
}

TEST(EndToEndTest, OracleNeverViolatesOnFeasibleSettings) {
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu2, ContentionType::kCompute,
                Options(300, 23));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.4 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu2);
  goals.accuracy_goal = 0.9;
  auto oracle = MakeScheduler(SchemeId::kOracle, ex, goals);
  const RunResult r = ex.Run(ex.stack(DnnSetChoice::kBoth), *oracle, goals);
  EXPECT_LE(r.violation_fraction, 0.02);
}

TEST(EndToEndTest, SchemesSeeIdenticalEnvironment) {
  // Fair comparison: the trace replays identically, so two static runs of the same
  // configuration under different "schemes" measure identical outcomes.
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                Options(150, 31));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.88;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  const Configuration config{stack.space().candidate(3), 5};
  const RunResult a = ex.RunStatic(stack, config, goals);
  const RunResult b = ex.RunStatic(stack, config, goals);
  EXPECT_EQ(a.avg_energy, b.avg_energy);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
}

TEST(EndToEndTest, Fig9Dynamics_AlertSwitchesAwayFromBigTraditionalDuringContention) {
  // The Fig. 9 scenario: a scripted memory-contention window; ALERT should lean on the
  // anytime network (or smaller models) inside the window and run the big traditional
  // network outside it.
  ExperimentOptions o = Options(160, 9);
  o.contention_window = std::make_pair(46, 119);
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                o);
  Goals goals;
  goals.mode = GoalMode::kMaximizeAccuracy;
  goals.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  goals.energy_budget = 35.0 * goals.deadline;  // the paper's 35 W power limit
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals, true);

  int big_trad_inside = 0;
  int big_trad_outside = 0;
  int inside = 0;
  int outside = 0;
  for (int n = 0; n < 160; ++n) {
    const auto& d = r.records[static_cast<size_t>(n)].decision;
    const bool is_big_trad = !stack.space().model(d.candidate.model_index).is_anytime() &&
                             stack.space().model(d.candidate.model_index).family_rank >= 3;
    const bool in_window = n >= 48 && n < 119;  // allow the 1-input reaction lag
    if (in_window) {
      ++inside;
      big_trad_inside += is_big_trad ? 1 : 0;
    } else if (n < 46 || n >= 121) {
      ++outside;
      big_trad_outside += is_big_trad ? 1 : 0;
    }
  }
  const double frac_inside = static_cast<double>(big_trad_inside) / inside;
  const double frac_outside = static_cast<double>(big_trad_outside) / outside;
  EXPECT_LT(frac_inside, frac_outside - 0.3);
}

TEST(EndToEndTest, Fig9Dynamics_AccuracyStaysHighWithAnytime) {
  // ALERT (with anytime) sustains higher accuracy through the window than ALERT-Trad,
  // which must conservatively drop to smaller traditional networks (Section 5.3).
  ExperimentOptions o = Options(160, 9);
  o.contention_window = std::make_pair(46, 119);
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kMemory,
                o);
  Goals goals;
  goals.mode = GoalMode::kMaximizeAccuracy;
  goals.deadline = 1.25 * BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  goals.energy_budget = 35.0 * goals.deadline;
  auto alert = MakeScheduler(SchemeId::kAlert, ex, goals);
  auto alert_trad = MakeScheduler(SchemeId::kAlertTrad, ex, goals);
  const RunResult r_alert = ex.Run(ex.stack(DnnSetChoice::kBoth), *alert, goals);
  const RunResult r_trad =
      ex.Run(ex.stack(DnnSetChoice::kTraditionalOnly), *alert_trad, goals);
  EXPECT_GE(r_alert.avg_accuracy, r_trad.avg_accuracy - 0.002);
}

TEST(EndToEndTest, SysOnlyCannotMeetAccuracyGoals) {
  // Section 5.2: the System-only approach "performs much worse in satisfying accuracy
  // requirements" because it cannot change DNNs.
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                Options(200, 13));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.92;  // above the fastest model's 0.886
  auto sys = MakeScheduler(SchemeId::kSysOnly, ex, goals);
  const RunResult r = ex.Run(ex.stack(DnnSetChoice::kBoth), *sys, goals);
  EXPECT_TRUE(SettingViolated(goals, r));
  EXPECT_GT(r.violation_fraction, 0.9);
}

TEST(EndToEndTest, AppOnlyBurnsMoreEnergyThanAlertAny) {
  // Section 5.2: App-only "consumes 73% more energy in energy-minimizing tasks" than
  // ALERT-Any on the same candidate set.
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                Options(300, 19));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.08;
  goals.accuracy_goal = 0.9;
  auto app = MakeScheduler(SchemeId::kAppOnly, ex, goals);
  auto alert_any = MakeScheduler(SchemeId::kAlertAny, ex, goals);
  const RunResult r_app = ex.Run(ex.stack(DnnSetChoice::kAnytimeOnly), *app, goals);
  const RunResult r_any = ex.Run(ex.stack(DnnSetChoice::kAnytimeOnly), *alert_any, goals);
  EXPECT_GT(r_app.avg_energy, 1.3 * r_any.avg_energy);
}

TEST(EndToEndTest, NlpSentenceTaskRunsUnderSharedDeadlines) {
  Experiment ex(TaskId::kSentencePrediction, PlatformId::kCpu1, ContentionType::kMemory,
                Options(400, 29));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.25 * BaseDeadline(TaskId::kSentencePrediction, PlatformId::kCpu1);
  goals.accuracy_goal = 0.26;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals);
  EXPECT_LE(r.violation_fraction, 0.15);
  EXPECT_GT(r.avg_accuracy, 0.2);
  EXPECT_LT(r.avg_perplexity, 250.0);
}

TEST(EndToEndTest, GpuIsNearStaticOptimal) {
  // Section 5.2: "The GPU experiences significantly lower dynamic fluctuation so the
  // static oracle makes good predictions" — adaptation buys little there.
  Experiment ex(TaskId::kImageClassification, PlatformId::kGpu, ContentionType::kNone,
                Options(300, 37));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 1.0 * BaseDeadline(TaskId::kImageClassification, PlatformId::kGpu);
  goals.accuracy_goal = 0.9;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  const auto static_best = FindStaticOracle(ex, stack, goals);
  ASSERT_TRUE(static_best.feasible);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals);
  EXPECT_NEAR(r.avg_energy / static_best.result.avg_energy, 1.0, 0.12);
}

TEST(EndToEndTest, DynamicRequirementChangeMidRun) {
  // Requirements "may switch among different settings" (Section 1.1): tighten the
  // accuracy goal mid-run and verify ALERT follows.
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                Options(200, 41));
  Goals goals;
  goals.mode = GoalMode::kMinimizeEnergy;
  goals.deadline = 0.1;
  goals.accuracy_goal = 0.88;
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);

  double first_half_acc = 0.0;
  double second_half_acc = 0.0;
  for (int n = 0; n < 200; ++n) {
    if (n == 100) {
      Goals harder = goals;
      harder.accuracy_goal = 0.93;
      alert.set_goals(harder);
    }
    InferenceRequest req;
    req.input_index = n;
    req.deadline = goals.deadline;
    req.period = goals.deadline;
    const auto d = alert.Decide(req);
    const Measurement m = stack.simulator().Execute(
        d.ToExecRequest(req), ex.trace().inputs[static_cast<size_t>(n)]);
    alert.Observe(d, m);
    (n < 100 ? first_half_acc : second_half_acc) += m.accuracy;
  }
  EXPECT_GT(second_half_acc / 100.0, first_half_acc / 100.0 + 0.02);
}

}  // namespace
}  // namespace alert
