// Claim-level regression tests: each test pins one quantitative or ordinal claim from
// the paper that the reproduction currently satisfies, so refactors cannot silently
// break the reproduction.  Magnitudes use generous tolerances (the substrate is a
// simulator); orderings are asserted strictly.
#include <gtest/gtest.h>

#include "src/common/ids.h"
#include "src/common/units.h"
#include "src/core/goals.h"
#include "src/harness/evaluation.h"

namespace alert {
namespace {

CellSpec Spec(TaskId task, PlatformId platform, ContentionType contention,
              GoalMode mode) {
  CellSpec spec;
  spec.task = task;
  spec.platform = platform;
  spec.contention = contention;
  spec.mode = mode;
  spec.options.num_inputs = 250;
  spec.options.seed = 20200715;
  return spec;
}

double Norm(const CellResult& cell, SchemeId id) {
  const SchemeCellStats* s = cell.Find(id);
  EXPECT_NE(s, nullptr);
  return s->mean_normalized;
}

int Violations(const CellResult& cell, SchemeId id) {
  return cell.Find(id)->violated_settings;
}

TEST(PaperClaimsTest, Section52_AlertWithin99PercentOfOracleEnergy) {
  // "ALERT achieves 93-99% of Oracle's energy and accuracy optimization."
  const SchemeId schemes[] = {SchemeId::kAlert, SchemeId::kOracle};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kMemory, GoalMode::kMinimizeEnergy),
                   schemes);
  EXPECT_LE(Norm(cell, SchemeId::kAlert), 1.10 * Norm(cell, SchemeId::kOracle));
}

TEST(PaperClaimsTest, Section52_SysOnlyViolatesMostAccuracySettings) {
  // "it creates accuracy violations in 68% of the settings."
  const SchemeId schemes[] = {SchemeId::kSysOnly};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kNone, GoalMode::kMinimizeEnergy),
                   schemes);
  const SchemeCellStats* sys = cell.Find(SchemeId::kSysOnly);
  EXPECT_GT(static_cast<double>(sys->violated_settings) / sys->usable_settings, 0.5);
}

TEST(PaperClaimsTest, Section52_AppOnlyBurnsFarMoreEnergyThanAlertAny) {
  // "it consumes 73% more energy in energy-minimizing tasks."
  const SchemeId schemes[] = {SchemeId::kAlertAny, SchemeId::kAppOnly};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kNone, GoalMode::kMinimizeEnergy),
                   schemes);
  EXPECT_GT(Norm(cell, SchemeId::kAppOnly), 1.4 * Norm(cell, SchemeId::kAlertAny));
}

TEST(PaperClaimsTest, Section52_AppOnlyViolatesEnergyBudgets) {
  // "introduces many energy-budget violations particularly under resource contention."
  const SchemeId schemes[] = {SchemeId::kAlertAny, SchemeId::kAppOnly};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kMemory, GoalMode::kMaximizeAccuracy),
                   schemes);
  EXPECT_GE(Violations(cell, SchemeId::kAppOnly),
            2 * Violations(cell, SchemeId::kAlertAny));
  EXPECT_GT(Violations(cell, SchemeId::kAppOnly), 8);
}

TEST(PaperClaimsTest, Section52_NoCoordWorseThanCoordinated) {
  // "The no-coordination scheme is worse than both System- and Application-only ...
  // with 69% more energy ... than ALERT-Any" — we assert the ordering.
  const SchemeId schemes[] = {SchemeId::kAlertAny, SchemeId::kNoCoord};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu2,
                        ContentionType::kCompute, GoalMode::kMinimizeEnergy),
                   schemes);
  EXPECT_GT(Norm(cell, SchemeId::kNoCoord), 1.2 * Norm(cell, SchemeId::kAlertAny));
}

TEST(PaperClaimsTest, Section52_SysOnlyErrorFarAboveAlertAny) {
  // "it introduces 34% more error than ALERT-Any" (minimize-error task).
  const SchemeId schemes[] = {SchemeId::kAlertAny, SchemeId::kSysOnly};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kNone, GoalMode::kMaximizeAccuracy),
                   schemes);
  EXPECT_GT(Norm(cell, SchemeId::kSysOnly), 1.25 * Norm(cell, SchemeId::kAlertAny));
}

TEST(PaperClaimsTest, Section52_OracleNeverViolatesEnergyTask) {
  const SchemeId schemes[] = {SchemeId::kOracle};
  for (ContentionType c : {ContentionType::kNone, ContentionType::kMemory}) {
    const CellResult cell = EvaluateCell(
        Spec(TaskId::kImageClassification, PlatformId::kCpu1, c,
             GoalMode::kMinimizeEnergy),
        schemes);
    EXPECT_EQ(Violations(cell, SchemeId::kOracle), 0) << ContentionName(c);
  }
}

TEST(PaperClaimsTest, Section52_GpuGainsLeastFromAdaptation) {
  // "The GPU experiences significantly lower dynamic fluctuation so the static oracle
  // makes good predictions" — ALERT's margin over OracleStatic is smaller on the GPU
  // than on the laptop.
  const SchemeId schemes[] = {SchemeId::kOracle};
  const CellResult gpu =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kGpu,
                        ContentionType::kNone, GoalMode::kMinimizeEnergy),
                   schemes);
  const CellResult cpu =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kNone, GoalMode::kMinimizeEnergy),
                   schemes);
  // Normalized oracle metric closer to 1.0 on GPU = less to gain from adaptation.
  EXPECT_GT(Norm(gpu, SchemeId::kOracle), Norm(cpu, SchemeId::kOracle) - 0.02);
}

TEST(PaperClaimsTest, Section53_AlertTradWeakerUnderContentionErrorTask) {
  // Table 5: "ALERT-Trad violates more accuracy constraints ... particularly under
  // resource contention", visible as worse error-task results than ALERT.
  const SchemeId schemes[] = {SchemeId::kAlert, SchemeId::kAlertTrad};
  const CellResult cell =
      EvaluateCell(Spec(TaskId::kImageClassification, PlatformId::kCpu1,
                        ContentionType::kMemory, GoalMode::kMaximizeAccuracy),
                   schemes);
  EXPECT_LE(Norm(cell, SchemeId::kAlert), Norm(cell, SchemeId::kAlertTrad) + 0.02);
}

TEST(PaperClaimsTest, Section31_GoalValidation) {
  Goals g;
  EXPECT_FALSE(g.Valid());  // no deadline
  g.deadline = 0.1;
  EXPECT_FALSE(g.Valid());  // min-energy without accuracy goal
  g.accuracy_goal = 0.9;
  EXPECT_TRUE(g.Valid());
  g.accuracy_goal = 1.5;
  EXPECT_FALSE(g.Valid());
  g.mode = GoalMode::kMaximizeAccuracy;
  EXPECT_FALSE(g.Valid());  // budget missing
  g.energy_budget = 1.0;
  EXPECT_TRUE(g.Valid());
}

TEST(PaperClaimsTest, IdsHaveStableNames) {
  EXPECT_EQ(PlatformName(PlatformId::kCpu2), "CPU2");
  EXPECT_EQ(TaskName(TaskId::kSentencePrediction), "SentencePrediction");
  EXPECT_EQ(ContentionName(ContentionType::kMemory), "Memory");
  EXPECT_EQ(GoalModeName(GoalMode::kMinimizeLatency), "MinimizeLatency");
  EXPECT_EQ(ToMillis(0.5), 500.0);
}

}  // namespace
}  // namespace alert
