// Parameterized property sweeps across the full (task x platform x contention x mode)
// matrix: invariants that must hold for every combination.
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/alert_scheduler.h"
#include "src/harness/constraint_grid.h"
#include "src/harness/evaluation.h"
#include "src/harness/schemes.h"
#include "src/harness/static_oracle.h"

namespace alert {
namespace {

using CellParam = std::tuple<TaskId, PlatformId, ContentionType>;

std::string ParamName(const ::testing::TestParamInfo<CellParam>& info) {
  const auto [task, platform, contention] = info.param;
  return std::string(TaskName(task)) + "_" + std::string(PlatformName(platform)) + "_" +
         std::string(ContentionName(contention));
}

class CellPropertyTest : public ::testing::TestWithParam<CellParam> {
 protected:
  static ExperimentOptions Options() {
    ExperimentOptions o;
    o.num_inputs = 200;
    o.seed = 77;
    return o;
  }

  Goals MidGoals(GoalMode mode) const {
    const auto [task, platform, contention] = GetParam();
    const PlatformSpec& spec = GetPlatform(platform);
    Goals g;
    g.mode = mode;
    g.deadline = 1.0 * BaseDeadline(task, platform);
    g.accuracy_goal = AccuracyGoalsFor(task)[2];
    g.energy_budget = 0.8 * (spec.cap_max + spec.base_power) * g.deadline;
    return g;
  }
};

TEST_P(CellPropertyTest, AlertKeepsViolationsBounded) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMinimizeEnergy);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals);
  EXPECT_LE(r.violation_fraction, 0.15);
}

TEST_P(CellPropertyTest, AlertEnergyIsWithinOracleEnvelope) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMinimizeEnergy);
  auto oracle = MakeScheduler(SchemeId::kOracle, ex, goals);
  const RunResult oracle_run = ex.Run(ex.stack(DnnSetChoice::kBoth), *oracle, goals);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult alert_run = ex.Run(stack, alert, goals);
  if (task == TaskId::kImageClassification) {
    // The per-input oracle lower-bounds fixed-deadline tasks.  (It does NOT bound the
    // sentence task: shared sentence budgets make the per-word oracle myopic — racing
    // a word steals idle savings later, so ALERT can legitimately beat it.)
    EXPECT_GE(alert_run.avg_energy, 0.95 * oracle_run.avg_energy);
  }
  EXPECT_LE(alert_run.avg_energy, 2.0 * oracle_run.avg_energy);
}

TEST_P(CellPropertyTest, EnergyIsAlwaysPositiveAndAboveIdleFloor) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMinimizeEnergy);
  const Stack& stack = ex.stack(DnnSetChoice::kBoth);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals, true);
  const PlatformSpec& spec = GetPlatform(platform);
  for (const auto& rec : r.records) {
    EXPECT_GT(rec.measurement.energy, 0.0);
    // Nothing can consume less than idle power for the whole period.
    const double idle_floor =
        (spec.idle_power + spec.base_power) * rec.measurement.period;
    EXPECT_GE(rec.measurement.energy, idle_floor - 1e-9);
  }
}

TEST_P(CellPropertyTest, AnytimeDeliveredStageNeverExceedsLimit) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMaximizeAccuracy);
  const Stack& stack = ex.stack(DnnSetChoice::kAnytimeOnly);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals, true);
  for (const auto& rec : r.records) {
    if (rec.decision.candidate.stage_limit >= 0) {
      EXPECT_LE(rec.measurement.delivered_stage, rec.decision.candidate.stage_limit);
    }
  }
}

TEST_P(CellPropertyTest, MeasuredLatencyNeverExceedsDeadlineForAnytime) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMaximizeAccuracy);
  const Stack& stack = ex.stack(DnnSetChoice::kAnytimeOnly);
  AlertScheduler alert(stack.space(), goals);
  const RunResult r = ex.Run(stack, alert, goals, true);
  for (const auto& rec : r.records) {
    EXPECT_LE(rec.measurement.latency, rec.measurement.deadline + 1e-9);
  }
}

TEST_P(CellPropertyTest, StaticOracleIsReproducible) {
  const auto [task, platform, contention] = GetParam();
  Experiment ex(task, platform, contention, Options());
  const Goals goals = MidGoals(GoalMode::kMinimizeEnergy);
  const auto a = FindStaticOracle(ex, ex.stack(DnnSetChoice::kBoth), goals);
  const auto b = FindStaticOracle(ex, ex.stack(DnnSetChoice::kBoth), goals);
  EXPECT_EQ(a.config.candidate.model_index, b.config.candidate.model_index);
  EXPECT_EQ(a.config.power_index, b.config.power_index);
  EXPECT_EQ(a.result.avg_energy, b.result.avg_energy);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellPropertyTest,
    ::testing::Combine(
        ::testing::Values(TaskId::kImageClassification, TaskId::kSentencePrediction),
        ::testing::Values(PlatformId::kCpu1, PlatformId::kCpu2),
        ::testing::Values(ContentionType::kNone, ContentionType::kMemory,
                          ContentionType::kCompute)),
    ParamName);

// GPU runs image classification only (footnote 4 of the paper).
INSTANTIATE_TEST_SUITE_P(
    GpuCells, CellPropertyTest,
    ::testing::Combine(::testing::Values(TaskId::kImageClassification),
                       ::testing::Values(PlatformId::kGpu),
                       ::testing::Values(ContentionType::kNone, ContentionType::kMemory,
                                         ContentionType::kCompute)),
    ParamName);

// --- Deadline sweep: tighter deadlines can only increase energy (more provisioning)
// and decrease achievable accuracy, for the clairvoyant oracle. ---

class DeadlineSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(DeadlineSweepTest, OracleAccuracyMonotoneInDeadline) {
  const double mult = GetParam();
  Experiment ex(TaskId::kImageClassification, PlatformId::kCpu1, ContentionType::kNone,
                [] {
                  ExperimentOptions o;
                  o.num_inputs = 150;
                  o.seed = 55;
                  return o;
                }());
  const double base = BaseDeadline(TaskId::kImageClassification, PlatformId::kCpu1);
  Goals tight;
  tight.mode = GoalMode::kMaximizeAccuracy;
  tight.deadline = mult * base;
  tight.energy_budget = 1e9;
  Goals loose = tight;
  loose.deadline = (mult + 0.4) * base;
  auto o1 = MakeScheduler(SchemeId::kOracle, ex, tight);
  auto o2 = MakeScheduler(SchemeId::kOracle, ex, loose);
  const RunResult r_tight = ex.Run(ex.stack(DnnSetChoice::kBoth), *o1, tight);
  const RunResult r_loose = ex.Run(ex.stack(DnnSetChoice::kBoth), *o2, loose);
  EXPECT_GE(r_loose.avg_accuracy, r_tight.avg_accuracy - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Multipliers, DeadlineSweepTest,
                         ::testing::Values(0.4, 0.6, 0.8, 1.0, 1.4));

// --- Probability threshold sweep: raising Pr_th can only make ALERT's picks safer. ---

class PrThresholdSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PrThresholdSweepTest, HigherThresholdNeverPicksRiskier) {
  const double pr_th = GetParam();
  auto models = BuildEvaluationSet(TaskId::kImageClassification, DnnSetChoice::kBoth);
  PlatformSimulator sim(GetPlatform(PlatformId::kCpu1), models);
  ConfigSpace space(sim);
  Goals goals;
  goals.mode = GoalMode::kMaximizeAccuracy;
  goals.deadline = 0.08;
  goals.energy_budget = 1e9;
  goals.prob_threshold = pr_th;
  AlertScheduler s(space, goals);
  // Moderate volatility so thresholds bite.
  for (int i = 0; i < 30; ++i) {
    SchedulingDecision d;
    d.candidate = space.candidate(0);
    d.power_index = space.default_power_index();
    d.power_cap = space.cap(d.power_index);
    Measurement m;
    m.xi_anchor_time = (i % 2 == 0 ? 0.9 : 1.5) *
                       space.ProfileLatency(d.candidate.model_index, d.power_index);
    m.xi_anchor_fraction = 1.0;
    m.latency = m.xi_anchor_time;
    m.period = m.latency;
    m.inference_power = 30.0;
    m.idle_power = 6.0;
    s.Observe(d, m);
  }
  InferenceRequest req;
  req.input_index = 0;
  req.deadline = 0.08;
  req.period = 0.08;
  const auto d = s.Decide(req);
  const auto est = s.Estimate(Configuration{d.candidate, d.power_index}, 0.08, 0.08);
  if (pr_th > 0.0) {
    EXPECT_GE(est.prob_deadline, pr_th - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PrThresholdSweepTest,
                         ::testing::Values(0.0, 0.9, 0.95, 0.99, 0.999));

}  // namespace
}  // namespace alert
