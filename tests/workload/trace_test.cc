#include "src/workload/trace.h"

#include <cmath>

#include <gtest/gtest.h>

namespace alert {
namespace {

TraceOptions Opts(int n, uint64_t seed) {
  TraceOptions o;
  o.num_inputs = n;
  o.seed = seed;
  return o;
}

TEST(TraceTest, DeterministicForSameSeed) {
  const auto a = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, Opts(200, 99));
  const auto b = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, Opts(200, 99));
  ASSERT_EQ(a.num_inputs(), b.num_inputs());
  for (int i = 0; i < a.num_inputs(); ++i) {
    const auto& x = a.inputs[static_cast<size_t>(i)];
    const auto& y = b.inputs[static_cast<size_t>(i)];
    EXPECT_EQ(x.contention_multiplier, y.contention_multiplier);
    EXPECT_EQ(x.noise_multiplier, y.noise_multiplier);
    EXPECT_EQ(x.drift_multiplier, y.drift_multiplier);
    EXPECT_EQ(x.tail_multiplier, y.tail_multiplier);
  }
}

TEST(TraceTest, DifferentSeedsDiffer) {
  const auto a = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(50, 1));
  const auto b = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(50, 2));
  int diff = 0;
  for (int i = 0; i < 50; ++i) {
    diff += a.inputs[static_cast<size_t>(i)].noise_multiplier !=
                    b.inputs[static_cast<size_t>(i)].noise_multiplier
                ? 1
                : 0;
  }
  EXPECT_GT(diff, 40);
}

TEST(TraceTest, NoContentionMeansUnitMultiplier) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu2,
                                      ContentionType::kNone, Opts(100, 5));
  for (const auto& ctx : t.inputs) {
    EXPECT_FALSE(ctx.contention_active);
    EXPECT_EQ(ctx.contention_multiplier, 1.0);
    EXPECT_EQ(ctx.extra_idle_power, 0.0);
  }
}

TEST(TraceTest, ContentionPhasesHaveBothStates) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, Opts(1500, 42));
  int active = 0;
  for (const auto& ctx : t.inputs) {
    active += ctx.contention_active ? 1 : 0;
  }
  EXPECT_GT(active, 150);
  EXPECT_LT(active, 1350);
}

TEST(TraceTest, ActiveContentionInflatesLatencyAndIdlePower) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, Opts(1000, 43));
  const PlatformSpec& p = GetPlatform(PlatformId::kCpu1);
  for (const auto& ctx : t.inputs) {
    if (ctx.contention_active) {
      EXPECT_GE(ctx.contention_multiplier, 1.0);
      EXPECT_EQ(ctx.extra_idle_power, p.contention_idle_power);
    } else {
      EXPECT_EQ(ctx.contention_multiplier, 1.0);
    }
  }
}

TEST(TraceTest, ContentionWindowIsExact) {
  TraceOptions o = Opts(100, 7);
  o.contention_window = std::make_pair(20, 60);
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, o);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.inputs[static_cast<size_t>(i)].contention_active, i >= 20 && i < 60) << i;
  }
}

TEST(TraceTest, ContentionScaleScalesSlowdown) {
  TraceOptions strong = Opts(400, 11);
  strong.contention_window = std::make_pair(0, 400);
  TraceOptions weak = strong;
  weak.contention_scale = 0.5;
  const auto a = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, strong);
  const auto b = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kMemory, weak);
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (int i = 0; i < 400; ++i) {
    mean_a += a.inputs[static_cast<size_t>(i)].contention_multiplier;
    mean_b += b.inputs[static_cast<size_t>(i)].contention_multiplier;
  }
  EXPECT_GT(mean_a / 400.0, mean_b / 400.0 + 0.2);
}

TEST(TraceTest, SentenceStructurePartitionsInputs) {
  const auto t = MakeEnvironmentTrace(TaskId::kSentencePrediction, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(500, 13));
  ASSERT_TRUE(t.has_sentences());
  ASSERT_EQ(static_cast<int>(t.sentence_of_input.size()), 500);
  // Word indices restart at sentence boundaries and lengths are consistent.
  int expected_sentence = 0;
  int expected_word = 0;
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(t.sentence_of_input[static_cast<size_t>(i)], expected_sentence);
    EXPECT_EQ(t.word_in_sentence[static_cast<size_t>(i)], expected_word);
    ++expected_word;
    if (expected_word == t.sentence_length[static_cast<size_t>(expected_sentence)]) {
      ++expected_sentence;
      expected_word = 0;
    }
  }
  EXPECT_EQ(t.num_sentences, static_cast<int>(t.sentence_length.size()));
}

TEST(TraceTest, SentenceLengthsWithinBounds) {
  const auto t = MakeEnvironmentTrace(TaskId::kSentencePrediction, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(3000, 17));
  double sum = 0.0;
  for (int len : t.sentence_length) {
    EXPECT_GE(len, 1);   // a trailing sentence may be cut short
    EXPECT_LE(len, 80);
    sum += len;
  }
  const double avg = sum / static_cast<double>(t.sentence_length.size());
  EXPECT_NEAR(avg, MeanSentenceLength(), 4.0);
}

TEST(TraceTest, ImageTaskHasNoSentences) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(50, 19));
  EXPECT_FALSE(t.has_sentences());
}

TEST(TraceTest, DriftIsAutocorrelated) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(2000, 23));
  // Lag-1 autocorrelation of log drift should be near exp(-1/corr_length) ~ 0.99.
  double mean = 0.0;
  for (const auto& ctx : t.inputs) {
    mean += std::log(ctx.drift_multiplier);
  }
  mean /= 2000.0;
  double num = 0.0;
  double den = 0.0;
  for (int i = 0; i + 1 < 2000; ++i) {
    const double x = std::log(t.inputs[static_cast<size_t>(i)].drift_multiplier) - mean;
    const double y = std::log(t.inputs[static_cast<size_t>(i + 1)].drift_multiplier) - mean;
    num += x * y;
    den += x * x;
  }
  EXPECT_GT(num / den, 0.9);
}

TEST(TraceTest, GpuDriftIsTiny) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kGpu,
                                      ContentionType::kNone, Opts(500, 29));
  for (const auto& ctx : t.inputs) {
    EXPECT_NEAR(ctx.drift_multiplier, 1.0, 0.1);
  }
}

TEST(TraceTest, TailsAreRareButPresent) {
  const auto t = MakeEnvironmentTrace(TaskId::kImageClassification, PlatformId::kCpu1,
                                      ContentionType::kNone, Opts(20000, 31));
  int tails = 0;
  for (const auto& ctx : t.inputs) {
    if (ctx.tail_multiplier > 1.0) {
      ++tails;
    }
  }
  const double frac = static_cast<double>(tails) / 20000.0;
  EXPECT_GT(frac, 0.001);
  EXPECT_LT(frac, 0.02);
}

}  // namespace
}  // namespace alert
