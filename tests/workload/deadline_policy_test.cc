#include "src/workload/deadline_policy.h"

#include <gtest/gtest.h>

namespace alert {
namespace {

TEST(FixedDeadlineTest, ConstantDeadlineAndPeriod) {
  FixedDeadlinePolicy p(0.25);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(p.DeadlineFor(i), 0.25);
    EXPECT_DOUBLE_EQ(p.PeriodFor(i), 0.25);
    p.OnCompleted(i, 0.5);  // completions do not affect fixed deadlines
  }
  EXPECT_DOUBLE_EQ(p.DeadlineFor(10), 0.25);
}

class SentencePolicyTest : public ::testing::Test {
 protected:
  SentencePolicyTest() {
    TraceOptions o;
    o.num_inputs = 40;
    o.seed = 3;
    trace_ = MakeEnvironmentTrace(TaskId::kSentencePrediction, PlatformId::kCpu1,
                                  ContentionType::kNone, o);
  }
  EnvironmentTrace trace_;
};

TEST_F(SentencePolicyTest, FirstWordGetsNominalShare) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  // Budget = 0.01 * len; first word share = budget / len = 0.01.
  EXPECT_NEAR(p.DeadlineFor(0), 0.01, 1e-12);
}

TEST_F(SentencePolicyTest, FastWordsGrowLaterShares) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  const int len = trace_.sentence_length[0];
  if (len < 3) {
    GTEST_SKIP() << "first sentence too short for this test";
  }
  const Seconds d0 = p.DeadlineFor(0);
  p.OnCompleted(0, d0 * 0.5);  // finished in half the share
  const Seconds d1 = p.DeadlineFor(1);
  EXPECT_GT(d1, d0);
}

TEST_F(SentencePolicyTest, SlowWordsShrinkLaterShares) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  const int len = trace_.sentence_length[0];
  if (len < 3) {
    GTEST_SKIP();
  }
  const Seconds d0 = p.DeadlineFor(0);
  p.OnCompleted(0, d0 * 2.0);  // overran 2x
  EXPECT_LT(p.DeadlineFor(1), d0);
}

TEST_F(SentencePolicyTest, ExhaustedBudgetFloorsAtMinimumShare) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  const int len = trace_.sentence_length[0];
  if (len < 4) {
    GTEST_SKIP();
  }
  p.DeadlineFor(0);
  p.OnCompleted(0, 0.01 * len * 2.0);  // blew the whole budget on word 0
  // Remaining words get the floor: 10% of the nominal per-word share.
  EXPECT_NEAR(p.DeadlineFor(1), 0.001, 1e-12);
}

TEST_F(SentencePolicyTest, BudgetResetsAtSentenceBoundary) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  const int len0 = trace_.sentence_length[0];
  // Burn sentence 0's budget.
  for (int w = 0; w < len0; ++w) {
    p.DeadlineFor(w);
    p.OnCompleted(w, 0.05);
  }
  // First word of sentence 1 gets a fresh nominal share again.
  EXPECT_NEAR(p.DeadlineFor(len0), 0.01, 1e-12);
}

TEST_F(SentencePolicyTest, SharesConserveBudgetWhenOnTime) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  const int len = trace_.sentence_length[0];
  Seconds total = 0.0;
  for (int w = 0; w < len; ++w) {
    const Seconds d = p.DeadlineFor(w);
    total += d;
    p.OnCompleted(w, d);  // consume exactly the share
  }
  EXPECT_NEAR(total, 0.01 * len, 1e-9);
}

TEST_F(SentencePolicyTest, PeriodEqualsDeadline) {
  SentenceSharedDeadlinePolicy p(trace_, 0.01);
  EXPECT_DOUBLE_EQ(p.PeriodFor(0), p.DeadlineFor(0));
}

}  // namespace
}  // namespace alert
